//! The linear-operator abstraction shared by matrices and preconditioners.
//!
//! The execution contexts in `pscg-sim` apply preconditioners through this
//! trait, and the replay engine costs each application from
//! [`Operator::cost`] — so a preconditioner is both *numerics* (its `apply`)
//! and a *cost declaration* (flops and bytes per row, plus halo-equivalent
//! communication rounds for multilevel methods).

/// Modelled cost of one operator application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyCost {
    /// Floating-point operations per matrix row.
    pub flops_per_row: f64,
    /// Bytes of memory traffic per matrix row.
    pub bytes_per_row: f64,
    /// Halo-exchange-equivalent communication rounds per application
    /// (0 for pointwise or processor-local preconditioners).
    pub comm_rounds: u32,
}

impl ApplyCost {
    /// A free application (identity).
    pub fn free() -> Self {
        ApplyCost {
            flops_per_row: 0.0,
            bytes_per_row: 0.0,
            comm_rounds: 0,
        }
    }
}

/// A linear operator `y = Op(x)` with declared application cost.
pub trait Operator {
    /// Operator dimension (square).
    fn nrows(&self) -> usize;

    /// Applies the operator: `y = Op(x)`. Takes `&mut self` so
    /// implementations may use internal scratch buffers.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);

    /// Declared per-application cost for the machine model.
    fn cost(&self) -> ApplyCost;

    /// Short name for reports.
    fn name(&self) -> &str {
        "operator"
    }

    /// Attempts to demote the operator's internal apply precision to fp32,
    /// returning `true` when subsequent [`Operator::apply`] calls run in
    /// reduced precision (with inputs/outputs still fp64 at the interface).
    /// The default refuses: operators without a reduced-precision path are
    /// always full fp64. Demotion is a *bandwidth* policy, not an accuracy
    /// claim — callers gate it behind the true-residual drift probe and
    /// must [`Operator::promote_precision`] when the probe objects.
    fn demote_precision(&mut self) -> bool {
        false
    }

    /// Restores the full-precision fp64 apply (no-op when never demoted).
    fn promote_precision(&mut self) {}

    /// True while the operator applies in reduced (fp32) precision.
    fn is_demoted(&self) -> bool {
        false
    }
}

/// The identity operator — used as the "no preconditioner" (`PCNONE`) slot.
#[derive(Debug, Clone, Copy)]
pub struct IdentityOp {
    n: usize,
}

impl IdentityOp {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityOp { n }
    }
}

impl Operator for IdentityOp {
    fn nrows(&self) -> usize {
        self.n
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }

    fn cost(&self) -> ApplyCost {
        // A copy still moves 16 bytes per row.
        ApplyCost {
            flops_per_row: 0.0,
            bytes_per_row: 16.0,
            comm_rounds: 0,
        }
    }

    fn name(&self) -> &str {
        "none"
    }
}

impl Operator for crate::csr::CsrMatrix {
    fn nrows(&self) -> usize {
        crate::csr::CsrMatrix::nrows(self)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn cost(&self) -> ApplyCost {
        let per_row = self.avg_nnz_per_row();
        ApplyCost {
            flops_per_row: 2.0 * per_row,
            bytes_per_row: 16.0 * per_row + 16.0,
            comm_rounds: 1,
        }
    }

    fn name(&self) -> &str {
        "csr-spmv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let mut id = IdentityOp::new(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        id.apply(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(id.cost().flops_per_row, 0.0);
        assert_eq!(id.name(), "none");
    }

    #[test]
    fn csr_as_operator_matches_spmv() {
        let mut a = crate::stencil::poisson2d_5pt(3, 3, 1.0, 1.0);
        let x = vec![1.0; 9];
        let mut y1 = vec![0.0; 9];
        let y2 = a.mul_vec(&x);
        Operator::apply(&mut a, &x, &mut y1);
        assert_eq!(y1, y2);
        assert!(a.cost().flops_per_row > 0.0);
    }
}

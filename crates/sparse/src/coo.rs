//! Coordinate-format matrix builder.
//!
//! [`CooMatrix`] is the mutable assembly format: generators and the Matrix
//! Market reader push `(row, col, value)` triplets in any order (duplicates
//! allowed, they are summed), then convert once to [`CsrMatrix`] for the
//! compute kernels.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A sparse matrix in coordinate (triplet) format, used for assembly.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` assembly buffer.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty buffer with capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one entry. Duplicate `(row, col)` pairs are summed during
    /// [`CooMatrix::to_csr`].
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Appends one entry and, if `row != col`, its mirror entry — convenient
    /// when assembling symmetric operators from a lower/upper triangle.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        self.push(row, col, val)?;
        if row != col {
            self.push(col, row, val)?;
        }
        Ok(())
    }

    /// Converts to CSR, sorting rows/columns and summing duplicates.
    /// Entries that sum to exactly zero are kept (structural nonzeros),
    /// matching the convention of Matrix Market files.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: O(nnz + nrows), no comparison sort needed.
        let nnz = self.vals.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let row_start = row_counts.clone();
        let mut cols = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        {
            let mut cursor = row_start.clone();
            for k in 0..nnz {
                let r = self.rows[k];
                let dst = cursor[r];
                cols[dst] = self.cols[k];
                vals[dst] = self.vals[k];
                cursor[r] += 1;
            }
        }
        // Sort within each row and merge duplicates in place.
        let mut out_ptr = vec![0usize; self.nrows + 1];
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (row_start[r], row_start[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
            .expect("COO->CSR conversion produced invalid CSR") // pscg-lint: allow(panic-in-hot-path, assembly invariant: the conversion emits sorted in-bounds CSR by construction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert!(m.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.5).unwrap();
        m.push(0, 1, 2.5).unwrap();
        m.push(1, 0, -1.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.get(1, 0), -1.0);
    }

    #[test]
    fn to_csr_sorts_columns() {
        let mut m = CooMatrix::new(1, 4);
        m.push(0, 3, 3.0).unwrap();
        m.push(0, 0, 0.5).unwrap();
        m.push(0, 2, 2.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 2, 3]);
        assert_eq!(csr.row_vals(0), &[0.5, 2.0, 3.0]);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut m = CooMatrix::new(3, 3);
        m.push_sym(0, 1, 2.0).unwrap();
        m.push_sym(2, 2, 5.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 0, 1.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_cols(0).len(), 0);
        assert_eq!(csr.row_cols(1).len(), 0);
        assert_eq!(csr.row_cols(2), &[0]);
    }
}

//! Compressed sparse row matrices and the SpMV kernel.

use std::sync::OnceLock;

use pscg_par::{DisjointMut, Pool};

use crate::error::SparseError;
use crate::format::{spmv_format, SpmvFormat};
use crate::sell::SellMatrix;
use crate::symcsr::SymCsrMatrix;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (checked by [`CsrMatrix::from_raw_parts`]):
/// `row_ptr.len() == nrows + 1`, `row_ptr\[0\] == 0`, `row_ptr` is
/// non-decreasing, `col_idx.len() == vals.len() == row_ptr[nrows]`, and
/// column indices within each row are strictly increasing and `< ncols`.
///
/// The SpMV entry points dispatch on the process-wide
/// [`crate::format::spmv_format`] knob; alternative representations
/// (SELL-C-σ, symmetric CSR) are derived lazily and cached. All formats
/// produce bitwise-identical results (see [`crate::sell`] and
/// [`crate::symcsr`] for the respective arguments).
#[derive(Debug)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
    /// nnz-balanced row boundaries for the parallel SpMV, built lazily from
    /// the structure (never the values, so `vals_mut` cannot stale it).
    par_rows: OnceLock<Vec<usize>>,
    /// Cached SELL-C-σ representation (`None` inside = conversion not
    /// applicable). Value-derived: invalidated by `vals_mut`/`scale`.
    sell: OnceLock<Option<SellMatrix>>,
    /// Cached symmetric representation (`None` inside = matrix is not
    /// exactly symmetric). Value-derived: invalidated by
    /// `vals_mut`/`scale`.
    sym: OnceLock<Option<SymCsrMatrix>>,
}

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        // Derived caches are not cloned: they are cheap to rebuild relative
        // to their footprint, and `SymCsrMatrix` owns scratch state.
        CsrMatrix::assemble(
            self.nrows,
            self.ncols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The cached partition/representations are derived state, not
        // identity.
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.vals == other.vals
    }
}

/// Row boundaries cutting `row_ptr` into runs of ≈`chunk_nnz` non-zeros:
/// the fixed, thread-count-independent work units of the parallel SpMV.
fn nnz_balanced_rows(row_ptr: &[usize], chunk_nnz: usize) -> Vec<usize> {
    let nrows = row_ptr.len() - 1;
    let chunk_nnz = chunk_nnz.max(1);
    let mut bounds = vec![0usize];
    // `row_ptr` may be a window of a larger matrix, so count from its base.
    let mut start_nnz = row_ptr[0];
    for r in 0..nrows {
        if row_ptr[r + 1] - start_nnz >= chunk_nnz {
            bounds.push(r + 1);
            start_nnz = row_ptr[r + 1];
        }
    }
    // pscg-lint: allow(panic-in-hot-path, bounds starts with the 0 pushed before the loop)
    if *bounds.last().unwrap() != nrows {
        bounds.push(nrows);
    }
    bounds
}

impl CsrMatrix {
    /// Internal constructor: wraps validated arrays with empty caches.
    fn assemble(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
            par_rows: OnceLock::new(),
            sell: OnceLock::new(),
            sym: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix from raw arrays, validating all invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::InvalidCsr(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidCsr("row_ptr[0] != 0".into()));
        }
        if col_idx.len() != vals.len() {
            return Err(SparseError::InvalidCsr(format!(
                "col_idx length {} != vals length {}",
                col_idx.len(),
                vals.len()
            )));
        }
        // pscg-lint: allow(panic-in-hot-path, row_ptr.len() == nrows + 1 >= 1 was checked just above)
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::InvalidCsr(format!(
                "row_ptr[nrows] = {} != nnz = {}",
                row_ptr.last().unwrap(), // pscg-lint: allow(panic-in-hot-path, row_ptr.len() == nrows + 1 >= 1 was checked just above)
                col_idx.len()
            )));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidCsr(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidCsr(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: last,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(CsrMatrix::assemble(nrows, ncols, row_ptr, col_idx, vals))
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix::assemble(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Average number of stored entries per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values array.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values array (structure stays fixed). Drops the cached
    /// SELL/symmetric representations — they embed values, unlike the
    /// structure-only row partition.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        self.sell = OnceLock::new();
        self.sym = OnceLock::new();
        &mut self.vals
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Value at `(r, c)`, or `0.0` if the entry is not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self.row_cols(r).binary_search(&c) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a dense vector (square matrices).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// The cached nnz-balanced row partition driving the parallel SpMV.
    /// Boundaries depend only on the matrix structure and the
    /// [`pscg_par::knobs::spmv_chunk_nnz`] knob — never on the thread count.
    pub fn par_row_bounds(&self) -> &[usize] {
        self.par_rows
            .get_or_init(|| nnz_balanced_rows(&self.row_ptr, pscg_par::knobs::spmv_chunk_nnz()))
    }

    /// Drops the cached row partition *and* the cached SELL/symmetric
    /// representations so the next SpMV rebuilds them — needed after
    /// changing any [`pscg_par::knobs`] chunking knob (the tuner does).
    pub fn reset_par_rows(&mut self) {
        self.par_rows = OnceLock::new();
        self.sell = OnceLock::new();
        self.sym = OnceLock::new();
    }

    /// The cached SELL-C-σ representation, built on first use (`None` when
    /// the matrix cannot be converted, e.g. indices past `u32`).
    pub fn sell_cache(&self) -> Option<&SellMatrix> {
        self.sell
            .get_or_init(|| SellMatrix::from_csr(self).ok())
            .as_ref()
    }

    /// The cached symmetric representation, built on first use (`None` when
    /// the matrix is not exactly symmetric — the SpMV dispatch then falls
    /// back to plain CSR).
    pub fn sym_cache(&self) -> Option<&SymCsrMatrix> {
        self.sym
            .get_or_init(|| SymCsrMatrix::try_from_csr(self).ok())
            .as_ref()
    }

    /// Rows `[row_lo, row_hi)` of `y = A x`, serial (the per-chunk kernel;
    /// also the reference the parallel paths must match bitwise — each row
    /// accumulates independently, so row partitioning cannot change it).
    fn spmv_rows_serial(&self, row_lo: usize, row_hi: usize, x: &[f64], y: &mut [f64]) {
        for (out, r) in y.iter_mut().zip(row_lo..row_hi) {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Rows `[row_lo, row_hi)` with `B`-row register blocking: `B` rows
    /// walk their common-length prefix in lockstep with `B` independent
    /// accumulators (hiding the FP-add latency that bounds the scalar
    /// kernel), then finish their tails one row at a time; trailing rows
    /// `< B` fall back to the scalar kernel. Each row's own chain is still
    /// ascending-column from `0.0` — bitwise equal to `spmv_rows_serial`.
    fn spmv_rows_serial_blocked<const B: usize>(
        &self,
        row_lo: usize,
        row_hi: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        assert!(x.len() >= self.ncols, "blocked spmv: x shorter than ncols");
        let (vals, cols) = (&self.vals[..], &self.col_idx[..]);
        let mut r = row_lo;
        while r + B <= row_hi {
            let mut base = [0usize; B];
            let mut len = [0usize; B];
            let mut min_len = usize::MAX;
            for j in 0..B {
                base[j] = self.row_ptr[r + j];
                len[j] = self.row_ptr[r + j + 1] - base[j];
                min_len = min_len.min(len[j]);
            }
            let mut acc = [0.0f64; B];
            for k in 0..min_len {
                for j in 0..B {
                    let idx = base[j] + k;
                    // SAFETY: `idx < row_ptr[r+j+1] <= nnz` bounds vals and
                    // col_idx, and every stored column index is `< ncols <=
                    // x.len()` (validated by `from_raw_parts`, asserted
                    // above). Unchecked because three bounds checks per
                    // entry dominate this bandwidth-bound loop.
                    unsafe {
                        acc[j] +=
                            vals.get_unchecked(idx) * x.get_unchecked(*cols.get_unchecked(idx));
                    }
                }
            }
            for j in 0..B {
                for k in min_len..len[j] {
                    let idx = base[j] + k;
                    // SAFETY: as above.
                    unsafe {
                        acc[j] +=
                            vals.get_unchecked(idx) * x.get_unchecked(*cols.get_unchecked(idx));
                    }
                }
                y[r - row_lo + j] = acc[j];
            }
            r += B;
        }
        if r < row_hi {
            self.spmv_rows_serial(r, row_hi, x, &mut y[r - row_lo..]);
        }
    }

    /// The per-chunk CSR row kernel for `fmt` (scalar for the non-CSR
    /// formats, which have their own drivers).
    fn spmv_rows_fmt(
        &self,
        fmt: SpmvFormat,
        row_lo: usize,
        row_hi: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        match fmt {
            SpmvFormat::CsrUnrolled4 => self.spmv_rows_serial_blocked::<4>(row_lo, row_hi, x, y),
            SpmvFormat::CsrUnrolled8 => self.spmv_rows_serial_blocked::<8>(row_lo, row_hi, x, y),
            _ => self.spmv_rows_serial(row_lo, row_hi, x, y),
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// The hot loop of every method in the paper: row chunks of the cached
    /// nnz-balanced partition run on the global thread pool, each keeping
    /// the row accumulation in a register and streaming `col_idx`/`vals`
    /// once. Bitwise identical to the serial product at any thread count —
    /// and in any [`crate::format::spmv_format`] (the knob this entry point
    /// dispatches on): every format preserves each row's ascending-column
    /// accumulation chain exactly.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_with(&pscg_par::global(), x, y)
    }

    /// [`CsrMatrix::spmv`] on an explicit pool (tests and benches).
    pub fn spmv_with(&self, pool: &Pool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        let fmt = spmv_format();
        match fmt {
            SpmvFormat::SellCSigma => {
                if let Some(s) = self.sell_cache() {
                    return s.spmv_with(pool, x, y);
                }
                // Conversion not applicable (u32 overflow): plain CSR.
            }
            SpmvFormat::SymCsr => {
                if let Some(s) = self.sym_cache() {
                    return s.spmv_with(pool, x, y);
                }
                // Not exactly symmetric: plain CSR (results are bitwise
                // identical either way; only traffic differs).
            }
            _ => {}
        }
        // The serial/parallel decision depends only on the shape, never on
        // the pool width: a 1-lane pool takes the exact same path (inline)
        // with the exact same allocations, so traced runs — whose BufId
        // interning is address-based — stay identical across pool sizes.
        let bounds = self.par_row_bounds();
        let nchunks = bounds.len().saturating_sub(1);
        if nchunks <= 1 {
            self.spmv_rows_fmt(fmt, 0, self.nrows, x, y);
            return;
        }
        let out = DisjointMut::new(y);
        pool.run(nchunks, &|c| {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            pscg_par::sync_trace::record_read(x, 0, x.len());
            // SAFETY: partition boundaries are strictly increasing, so row
            // ranges (and the y sub-slices) are pairwise disjoint.
            let yy = unsafe { out.range(lo, hi) };
            self.spmv_rows_fmt(fmt, lo, hi, x, yy);
        });
    }

    /// `y = A x` restricted to rows `[row_lo, row_hi)` — the per-rank SpMV of
    /// the SPMD engine (x is indexed globally).
    pub fn spmv_rows(&self, row_lo: usize, row_hi: usize, x: &[f64], y: &mut [f64]) {
        self.spmv_rows_with(&pscg_par::global(), row_lo, row_hi, x, y)
    }

    /// [`CsrMatrix::spmv_rows`] on an explicit pool. The row window is
    /// re-chunked at the same nnz target, so the result stays bitwise equal
    /// to the serial kernel regardless of window or thread count. Format
    /// dispatch covers the CSR kernels only; the SELL/symmetric
    /// representations cover the whole matrix, not a window, so those
    /// formats run the 4-row register-blocked CSR kernel here (still
    /// bitwise identical — the representation never changes results).
    pub fn spmv_rows_with(
        &self,
        pool: &Pool,
        row_lo: usize,
        row_hi: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        assert!(row_hi <= self.nrows);
        assert_eq!(y.len(), row_hi - row_lo, "spmv_rows: y length mismatch");
        let fmt = match spmv_format() {
            SpmvFormat::Csr => SpmvFormat::Csr,
            SpmvFormat::CsrUnrolled8 => SpmvFormat::CsrUnrolled8,
            _ => SpmvFormat::CsrUnrolled4,
        };
        let window_nnz = self.row_ptr[row_hi] - self.row_ptr[row_lo];
        let chunk_nnz = pscg_par::knobs::spmv_chunk_nnz();
        // Shape-only decision — see `spmv_with` on why the pool width must
        // not influence the code path or its allocations.
        if window_nnz < 2 * chunk_nnz {
            self.spmv_rows_fmt(fmt, row_lo, row_hi, x, y);
            return;
        }
        let bounds = nnz_balanced_rows(&self.row_ptr[row_lo..=row_hi], chunk_nnz);
        let out = DisjointMut::new(y);
        pool.run(bounds.len() - 1, &|c| {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            pscg_par::sync_trace::record_read(x, 0, x.len());
            // SAFETY: chunk row ranges are pairwise disjoint.
            let yy = unsafe { out.range(lo, hi) };
            self.spmv_rows_fmt(fmt, row_lo + lo, row_lo + hi, x, yy);
        });
    }

    /// Allocating convenience wrapper around [`CsrMatrix::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut cnt = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            cnt[c + 1] += 1;
        }
        for i in 0..self.ncols {
            cnt[i + 1] += cnt[i];
        }
        let row_ptr = cnt.clone();
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = row_ptr.clone();
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = cursor[c];
                col_idx[dst] = r;
                vals[dst] = self.vals[k];
                cursor[c] += 1;
            }
        }
        // Rows of the transpose are produced in increasing source-row order,
        // so column indices are already sorted.
        CsrMatrix::assemble(self.ncols, self.nrows, row_ptr, col_idx, vals)
    }

    /// Sparse matrix product `self · other`, via a row-merge with a dense
    /// sparse-accumulator over `other.ncols()`. Used to form Galerkin coarse
    /// operators `RAP` in the multigrid preconditioners.
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul: inner dimension mismatch");
        let m = other.ncols;
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        // Sparse accumulator: value per output column + touched list.
        let mut acc = vec![0.0f64; m];
        let mut mark = vec![false; m];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..self.nrows {
            touched.clear();
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a = self.vals[k];
                let krow = self.col_idx[k];
                for k2 in other.row_ptr[krow]..other.row_ptr[krow + 1] {
                    let c = other.col_idx[k2];
                    if !mark[c] {
                        mark[c] = true;
                        touched.push(c);
                        acc[c] = 0.0;
                    }
                    acc[c] += a * other.vals[k2];
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                col_idx.push(c);
                vals.push(acc[c]);
                mark[c] = false;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::assemble(self.nrows, m, row_ptr, col_idx, vals)
    }

    /// Galerkin triple product `Pᵀ · self · P`.
    pub fn rap(&self, p: &CsrMatrix) -> CsrMatrix {
        p.transpose().matmul(&self.matmul(p))
    }

    /// Checks `A == Aᵀ` up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structurally unsymmetric entries may still cancel numerically;
            // fall back to a value comparison through `get`.
            for r in 0..self.nrows {
                for (k, &c) in self.row_cols(r).iter().enumerate() {
                    if (self.row_vals(r)[k] - t.get(r, c)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.vals
            .iter()
            .zip(t.vals.iter())
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if every diagonal entry is positive and every row is
    /// weakly diagonally dominant — a cheap sufficient condition for positive
    /// semidefiniteness of a symmetric matrix (all generated operators here
    /// satisfy it strictly in at least one row, giving SPD).
    pub fn is_diagonally_dominant(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (k, &c) in self.row_cols(r).iter().enumerate() {
                let v = self.row_vals(r)[k];
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            if diag <= 0.0 || diag + 1e-12 * diag.abs() < off {
                return false;
            }
        }
        true
    }

    /// Gershgorin upper bound on the spectrum: `max_r (a_rr + Σ|a_rc|)`.
    pub fn gershgorin_upper(&self) -> f64 {
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.nrows {
            let mut diag = 0.0;
            let mut radius = 0.0;
            for (k, &c) in self.row_cols(r).iter().enumerate() {
                let v = self.row_vals(r)[k];
                if c == r {
                    diag = v;
                } else {
                    radius += v.abs();
                }
            }
            hi = hi.max(diag + radius);
        }
        hi
    }

    /// Scales all values by `s`.
    pub fn scale(&mut self, s: f64) {
        // Value-derived caches go stale (the structure-only row partition
        // does not).
        self.sell = OnceLock::new();
        self.sym = OnceLock::new();
        for v in &mut self.vals {
            *v *= s;
        }
    }

    /// Modelled memory traffic of one SpMV in format `fmt`, in bytes —
    /// matrix streams (values + indices + row metadata) plus one
    /// write-allocate pass over `y` and one nominal read of `x` (gather
    /// locality is not modelled). Used by `kernelbench` to report
    /// effective bytes/nnz per format.
    pub fn spmv_traffic_bytes(&self, fmt: SpmvFormat) -> f64 {
        let nnz = self.nnz() as f64;
        let rows = self.nrows as f64;
        let vecs = 16.0 * rows; // x read + y written, 8 B each
        match fmt {
            // 8 B value + 8 B usize column per entry + 8 B row_ptr per row.
            SpmvFormat::Csr | SpmvFormat::CsrUnrolled4 | SpmvFormat::CsrUnrolled8 => {
                16.0 * nnz + 8.0 * rows + vecs
            }
            // 8 B value + 4 B u32 column per *padded* entry + 8 B
            // perm/len metadata per row.
            SpmvFormat::SellCSigma => match self.sell_cache() {
                Some(s) => 12.0 * s.padded_nnz() as f64 + 8.0 * rows + vecs,
                None => self.spmv_traffic_bytes(SpmvFormat::Csr),
            },
            // Each stored upper entry (12 B) is read once and serves both
            // mirror halves; diagonal 8 B + row_ptr 8 B per row.
            SpmvFormat::SymCsr => match self.sym_cache() {
                Some(s) => {
                    let upper = (s.stored_nnz() - s.nrows()) as f64;
                    12.0 * upper + 16.0 * rows + vecs
                }
                None => self.spmv_traffic_bytes(SpmvFormat::Csr),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [ 4 -1  0]
        // [-1  4 -1]
        // [ 0 -1  4]
        let mut c = CooMatrix::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 4.0).unwrap();
        }
        c.push_sym(0, 1, -1.0).unwrap();
        c.push_sym(1, 2, -1.0).unwrap();
        c.to_csr()
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // bad row_ptr length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // row_ptr not starting at 0
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![1, 2], vec![0], vec![1.0]).is_err());
        // decreasing row_ptr
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // unsorted columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![4.0 - 2.0, -1.0 + 8.0 - 3.0, -2.0 + 12.0]);
    }

    #[test]
    fn spmv_rows_matches_full() {
        let a = small();
        let x = [0.5, -1.0, 2.0];
        let full = a.mul_vec(&x);
        let mut part = vec![0.0; 2];
        a.spmv_rows(1, 3, &x, &mut part);
        assert_eq!(part, full[1..3]);
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_and_dominance() {
        let a = small();
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diagonally_dominant());
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 3.0).unwrap();
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 1.0).unwrap();
        let b = c.to_csr();
        assert!(!b.is_symmetric(1e-12));
        assert!(!b.is_diagonally_dominant());
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
    }

    #[test]
    fn matmul_matches_dense_product() {
        let a = small();
        let i = CsrMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        let a2 = a.matmul(&a);
        // Check a couple of entries of A^2 for the tridiagonal [4,-1].
        assert_eq!(a2.get(0, 0), 17.0); // 4*4 + (-1)*(-1)
        assert_eq!(a2.get(0, 1), -8.0); // 4*(-1) + (-1)*4
        assert_eq!(a2.get(0, 2), 1.0); // (-1)*(-1)
        assert!(a2.is_symmetric(0.0));
    }

    #[test]
    fn rap_produces_galerkin_coarse_operator() {
        let a = small();
        // P aggregates rows {0,1} and {2}.
        let p =
            CsrMatrix::from_raw_parts(3, 2, vec![0, 1, 2, 3], vec![0, 0, 1], vec![1.0; 3]).unwrap();
        let c = a.rap(&p);
        assert_eq!(c.nrows(), 2);
        // c00 = sum of A over rows/cols {0,1} = 4-1-1+4 = 6.
        assert_eq!(c.get(0, 0), 6.0);
        assert_eq!(c.get(0, 1), -1.0);
        assert_eq!(c.get(1, 1), 4.0);
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn gershgorin_bounds_small_matrix() {
        let a = small();
        assert_eq!(a.gershgorin_upper(), 6.0);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let a = small();
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn avg_nnz_per_row_is_zero_on_empty_matrix() {
        let empty = CsrMatrix::from_raw_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(empty.avg_nnz_per_row(), 0.0);
        assert_eq!(small().avg_nnz_per_row(), 7.0 / 3.0);
    }

    #[test]
    fn nnz_balanced_rows_covers_and_balances() {
        // Rows with 0/1/5/1/1 nnz at a 2-nnz target: cuts fall after each
        // row that fills its chunk, and every row lands in exactly one chunk.
        let row_ptr = vec![0, 0, 1, 6, 7, 8];
        let b = nnz_balanced_rows(&row_ptr, 2);
        assert_eq!(*b.first().unwrap(), 0);
        assert_eq!(*b.last().unwrap(), 5);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b, vec![0, 3, 5]);
        // Degenerate shapes.
        assert_eq!(nnz_balanced_rows(&[0], 4), vec![0]);
        assert_eq!(nnz_balanced_rows(&[0, 3], 1), vec![0, 1]);
    }

    #[test]
    fn blocked_kernels_are_bitwise_scalar() {
        use crate::stencil::{poisson3d_7pt, Grid3};
        let a = poisson3d_7pt(Grid3::cube(7), None);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut want = vec![0.0; a.nrows()];
        a.spmv_rows_serial(0, a.nrows(), &x, &mut want);
        let mut y4 = vec![f64::NAN; a.nrows()];
        a.spmv_rows_serial_blocked::<4>(0, a.nrows(), &x, &mut y4);
        assert_eq!(y4, want);
        let mut y8 = vec![f64::NAN; a.nrows()];
        a.spmv_rows_serial_blocked::<8>(0, a.nrows(), &x, &mut y8);
        assert_eq!(y8, want);
        // Odd windows exercise the scalar remainder.
        let mut part = vec![f64::NAN; 13];
        a.spmv_rows_serial_blocked::<4>(3, 16, &x, &mut part);
        assert_eq!(part, want[3..16]);
    }

    #[test]
    fn format_dispatch_is_bitwise_invariant() {
        use crate::format::{set_spmv_format, SpmvFormat};
        use crate::stencil::{poisson3d_7pt, Grid3};
        let a = poisson3d_7pt(Grid3::cube(6), None);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut want = vec![0.0; a.nrows()];
        a.spmv_rows_serial(0, a.nrows(), &x, &mut want);
        let before = crate::format::spmv_format();
        for fmt in SpmvFormat::ALL {
            set_spmv_format(fmt);
            let mut y = vec![f64::NAN; a.nrows()];
            a.spmv(&x, &mut y);
            assert_eq!(y, want, "format {fmt} diverges");
            let mut part = vec![f64::NAN; a.nrows() - 9];
            a.spmv_rows(4, a.nrows() - 5, &x, &mut part);
            assert_eq!(part, want[4..a.nrows() - 5], "format {fmt} window diverges");
            assert!(a.spmv_traffic_bytes(fmt) > 0.0);
        }
        set_spmv_format(before);
    }

    #[test]
    fn value_mutation_invalidates_derived_formats() {
        use crate::format::{set_spmv_format, SpmvFormat};
        let mut a = small();
        let before = crate::format::spmv_format();
        set_spmv_format(SpmvFormat::SellCSigma);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y); // populates the SELL cache
        a.vals_mut()[0] = 10.0;
        a.spmv(&x, &mut y);
        assert_eq!(y[0], 10.0 * 1.0 - 1.0 * 2.0, "stale SELL cache served");
        set_spmv_format(SpmvFormat::SymCsr);
        let mut b = small();
        b.spmv(&x, &mut y); // populates the symmetric cache
        b.scale(2.0);
        b.spmv(&x, &mut y);
        assert_eq!(y[0], 2.0 * (4.0 - 2.0), "stale symmetric cache served");
        set_spmv_format(before);
    }

    #[test]
    fn parallel_spmv_is_bitwise_serial_at_any_thread_count() {
        use crate::stencil::{poisson3d_7pt, Grid3};
        // Force several chunks despite the small problem.
        pscg_par::knobs::set_spmv_chunk_nnz(97);
        let a = poisson3d_7pt(Grid3::cube(9), None);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut reference = vec![0.0; a.nrows()];
        a.spmv_rows_serial(0, a.nrows(), &x, &mut reference);
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let mut y = vec![0.0; a.nrows()];
            a.spmv_with(&pool, &x, &mut y);
            assert_eq!(y, reference, "spmv differs at {threads} threads");
            let mut part = vec![0.0; a.nrows() - 10];
            a.spmv_rows_with(&pool, 5, a.nrows() - 5, &x, &mut part);
            assert_eq!(part, reference[5..a.nrows() - 5]);
        }
    }
}

//! Sparse-matrix substrate for the PIPE-PsCG reproduction.
//!
//! This crate provides everything the Krylov solvers need below the
//! communication layer:
//!
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row storage with the
//!   construction, validation and SPD-diagnostic utilities the solvers rely
//!   on, plus a cache-friendly sparse matrix–vector product.
//! * [`format`] / [`sell`] / [`symcsr`] — the kernel-format tier: a
//!   process-wide SpMV format knob dispatching between scalar CSR,
//!   register-blocked CSR, SELL-C-σ and symmetric-CSR kernel bodies, all
//!   bitwise identical per row at any thread count.
//! * [`MultiVector`] — a column-major `N × s` block of vectors with the block
//!   linear-combination kernels (`X += Y·B`, `X = Y − Z·α`, Gram products)
//!   that realise the paper's recurrence LCs.
//! * [`dense`] — the small dense LU factorisation used by the s-step
//!   "Scalar Work" (two `s × s` solves per iteration).
//! * [`stencil`] — structured-grid operators, including the 125-point 3-D
//!   Poisson stencil of the paper's evaluation.
//! * [`suitesparse`] — seeded synthetic surrogates for the ecology2,
//!   thermal2 and Serena matrices (matched size and sparsity; see DESIGN.md).
//! * [`partition`] — row-block partitioning with exact communication-volume
//!   analysis, feeding the distributed-memory model.
//! * [`io`] — Matrix Market reading and writing.

// Indexed loops are the clearer idiom for the numerical kernels here
// (triangular sweeps, stencil assembly); the iterator rewrites clippy
// suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod format;
pub mod io;
pub mod kernels;
pub mod multivec;
pub mod op;
pub mod partition;
pub mod rng;
pub mod sell;
pub mod stencil;
pub mod suitesparse;
pub mod symcsr;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use format::{set_spmv_format, spmv_format, SpmvFormat};
pub use multivec::MultiVector;
pub use op::{ApplyCost, IdentityOp, Operator};
pub use partition::RowBlockPartition;
pub use rng::SplitMix64;
pub use sell::SellMatrix;
pub use stencil::Grid3;
pub use symcsr::SymCsrMatrix;

//! SELL-C-σ (sliced ELLPACK) storage and its SpMV kernel.
//!
//! Layout (Kreutzer et al.'s SELL-C-σ, here with a fixed chunk height
//! C = [`SELL_C`] = 8): rows are sorted by descending length *within*
//! windows of σ consecutive rows (σ = [`pscg_par::knobs::sell_sigma`],
//! rounded up to a multiple of C), then packed into chunks of C rows.
//! Each chunk stores `width = max(row length in chunk)` columns in
//! column-major order, so the kernel walks C independent accumulator
//! chains with unit stride:
//!
//! ```text
//!   chunk 0 (rows π(0)..π(7))          chunk 1 (rows π(8)..π(15))
//!   ┌ v00 v10 … v70 │ v01 v11 … v71 │ … ┐ ┌ …
//!   └ c00 c10 … c70 │ c01 c11 … c71 │ … ┘ └ …      (u32 column ids)
//!      k = 0            k = 1
//! ```
//!
//! Two properties are load-bearing for the determinism contract:
//!
//! * **Per-row order is CSR order.** Conversion writes each row's entries
//!   at `k = 0..len` in ascending-column order, and the kernel accumulates
//!   `k` ascending from an initial `0.0` — the exact chain of the scalar
//!   CSR kernel, so results are bitwise identical in any format.
//! * **Padding is never touched arithmetically.** Padding slots hold
//!   `0.0`, but the kernel guards on per-row lengths instead of
//!   multiplying them in: `acc + 0.0·x` is *not* a bitwise no-op (it
//!   flips `-0.0` and manufactures NaN from ±inf).
//!
//! Parallel runs partition *chunks* into jobs balanced by padded nnz —
//! a function of structure and knobs only, never the thread count — and
//! each job scatters its finished rows through the permutation. Indices
//! are `u32` (conversion fails past `u32::MAX` rows/cols), cutting index
//! traffic from 8 B to 4 B per stored entry.

use pscg_par::{sync_trace, DisjointMut, Pool};

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// The fixed SELL chunk height C (rows per chunk, accumulators per job
/// inner loop). Eight chains cover the ~4-cycle FP add latency at one
/// fused multiply-add per cycle without spilling accumulators.
pub const SELL_C: usize = 8;

/// A sparse matrix in SELL-C-σ format (see module docs for the layout).
#[derive(Debug, Clone)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    /// σ actually used (multiple of [`SELL_C`]).
    sigma: usize,
    /// `perm[slot] = original row` for permuted slot order.
    perm: Vec<u32>,
    /// Stored row lengths, permuted slot order.
    row_len: Vec<u32>,
    /// Chunk start offsets into `cols`/`vals` (`nchunks + 1`).
    chunk_ptr: Vec<usize>,
    /// Column indices, column-major per chunk, `0` in padding slots.
    cols: Vec<u32>,
    /// Values, column-major per chunk, `0.0` in padding slots.
    vals: Vec<f64>,
    /// Job boundaries in chunk index space, balanced by padded nnz against
    /// [`pscg_par::knobs::spmv_chunk_nnz`] at construction.
    job_chunks: Vec<usize>,
    /// Stored (logical) nnz.
    nnz: usize,
}

impl SellMatrix {
    /// Converts a CSR matrix, reading σ and the parallel chunk target from
    /// [`pscg_par::knobs`]. Fails with [`SparseError::InvalidArgument`] when
    /// a row or column index does not fit `u32`.
    pub fn from_csr(a: &CsrMatrix) -> Result<SellMatrix, SparseError> {
        if a.nrows() > u32::MAX as usize || a.ncols() > u32::MAX as usize {
            return Err(SparseError::InvalidArgument(format!(
                "SELL-C-σ uses u32 indices; {}x{} exceeds u32::MAX",
                a.nrows(),
                a.ncols()
            )));
        }
        let nrows = a.nrows();
        let row_ptr = a.row_ptr();
        let sigma = pscg_par::knobs::sell_sigma().div_ceil(SELL_C) * SELL_C;
        // Permutation: within each σ-window sort slots by descending row
        // length; the sort is stable, so equal-length rows keep their
        // original order (deterministic, structure-only).
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for win in perm.chunks_mut(sigma) {
            win.sort_by_key(|&r| std::cmp::Reverse(row_ptr[r as usize + 1] - row_ptr[r as usize]));
        }
        let row_len: Vec<u32> = perm
            .iter()
            .map(|&r| (row_ptr[r as usize + 1] - row_ptr[r as usize]) as u32)
            .collect();
        let nchunks = nrows.div_ceil(SELL_C);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0usize);
        for ch in 0..nchunks {
            let base = ch * SELL_C;
            let h = SELL_C.min(nrows - base);
            // σ is a multiple of C, so a chunk never straddles a sort
            // window: the chunk's first slot has its maximum length.
            let width = (0..h)
                .map(|r| row_len[base + r] as usize)
                .max()
                .unwrap_or(0);
            chunk_ptr.push(chunk_ptr[ch] + width * SELL_C);
        }
        let padded = *chunk_ptr.last().unwrap(); // pscg-lint: allow(panic-in-hot-path, chunk_ptr starts with the 0 entry pushed at construction)
        let mut cols = vec![0u32; padded];
        let mut vals = vec![0.0f64; padded];
        for ch in 0..nchunks {
            let base = ch * SELL_C;
            let off = chunk_ptr[ch];
            let h = SELL_C.min(nrows - base);
            for r in 0..h {
                let orig = perm[base + r] as usize;
                let (lo, hi) = (row_ptr[orig], row_ptr[orig + 1]);
                for (k, idx) in (lo..hi).enumerate() {
                    cols[off + k * SELL_C + r] = a.col_idx()[idx] as u32;
                    vals[off + k * SELL_C + r] = a.vals()[idx];
                }
            }
        }
        // Jobs: runs of whole chunks holding ≈ spmv_chunk_nnz padded
        // entries each (shape + knob only — the same contract as the CSR
        // row partition).
        let target = pscg_par::knobs::spmv_chunk_nnz().max(1);
        let mut job_chunks = vec![0usize];
        let mut start = 0usize;
        for ch in 0..nchunks {
            if chunk_ptr[ch + 1] - start >= target {
                job_chunks.push(ch + 1);
                start = chunk_ptr[ch + 1];
            }
        }
        // pscg-lint: allow(panic-in-hot-path, job_chunks starts with the 0 entry pushed above)
        if *job_chunks.last().unwrap() != nchunks {
            job_chunks.push(nchunks);
        }
        Ok(SellMatrix {
            nrows,
            ncols: a.ncols(),
            sigma,
            perm,
            row_len,
            chunk_ptr,
            cols,
            vals,
            job_chunks,
            nnz: a.nnz(),
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (logical) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// σ actually used (the knob rounded up to a multiple of C).
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Allocated entries including padding.
    #[inline]
    pub fn padded_nnz(&self) -> usize {
        self.vals.len()
    }

    /// `padded_nnz / nnz` — 1.0 means no padding (1.0 when empty).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_nnz() as f64 / self.nnz as f64
        }
    }

    /// Lossless conversion back to CSR: original row order, ascending
    /// columns — bitwise the arrays the matrix was built from.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for (slot, &orig) in self.perm.iter().enumerate() {
            row_ptr[orig as usize + 1] = self.row_len[slot] as usize;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[self.nrows];
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        for (slot, &orig) in self.perm.iter().enumerate() {
            let ch = slot / SELL_C;
            let r = slot % SELL_C;
            let off = self.chunk_ptr[ch];
            let dst = row_ptr[orig as usize];
            for k in 0..self.row_len[slot] as usize {
                col_idx[dst + k] = self.cols[off + k * SELL_C + r] as usize;
                vals[dst + k] = self.vals[off + k * SELL_C + r];
            }
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, row_ptr, col_idx, vals)
            .expect("SELL round-trip produced invalid CSR") // pscg-lint: allow(panic-in-hot-path, assembly invariant: the round-trip emits valid CSR by construction)
    }

    /// One job's chunks: compute the C rows of each chunk with independent
    /// accumulators and scatter them through the permutation. `y` is the
    /// full output vector (indices are global).
    ///
    /// # Safety
    /// Chunks `[chunk_lo, chunk_hi)` must be claimed by at most one
    /// concurrent job (their permuted rows are disjoint across jobs).
    unsafe fn spmv_chunks(
        &self,
        chunk_lo: usize,
        chunk_hi: usize,
        x: &[f64],
        y: &DisjointMut<f64>,
    ) {
        for ch in chunk_lo..chunk_hi {
            let off = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - off) / SELL_C;
            let base = ch * SELL_C;
            let h = SELL_C.min(self.nrows - base);
            let lens = &self.row_len[base..base + h];
            let mut acc = [0.0f64; SELL_C];
            // Slots are sorted by descending length inside the chunk, so
            // lens[h-1] is the minimum: the uniform part runs unguarded.
            let min_len = lens[h - 1] as usize;
            let (vals, cols) = (&self.vals[..], &self.cols[..]);
            for k in 0..min_len {
                let at = off + k * SELL_C;
                for r in 0..h {
                    // SAFETY: `at + r < chunk_ptr[ch+1] <= vals.len()`, and
                    // stored column indices are `< ncols == x.len()` by
                    // construction (padding slots are excluded by the
                    // `min_len`/length guards). Unchecked: the bounds
                    // checks dominate this bandwidth-bound loop.
                    unsafe {
                        acc[r] += vals.get_unchecked(at + r)
                            * x.get_unchecked(*cols.get_unchecked(at + r) as usize);
                    }
                }
            }
            // Tail columns: guard on the true row length — padding slots
            // must never enter the sum (see module docs).
            for k in min_len..width {
                let at = off + k * SELL_C;
                for r in 0..h {
                    if (k as u32) < lens[r] {
                        // SAFETY: as above; the guard keeps this a real slot.
                        unsafe {
                            acc[r] += vals.get_unchecked(at + r)
                                * x.get_unchecked(*cols.get_unchecked(at + r) as usize);
                        }
                    }
                }
            }
            let record = sync_trace::is_enabled();
            for r in 0..h {
                let dst = self.perm[base + r] as usize;
                if record {
                    sync_trace::record(sync_trace::SyncEvent::BufWrite {
                        buf: y.addr(),
                        lo: dst,
                        hi: dst + 1,
                    });
                }
                // SAFETY: each original row appears in exactly one chunk,
                // and chunk ranges are disjoint across jobs (caller
                // contract), so element `dst` has a single writer.
                *unsafe { y.element(dst) } = acc[r];
            }
        }
    }

    /// `y = A x` on an explicit pool — bitwise identical to the scalar CSR
    /// kernel at any thread count.
    pub fn spmv_with(&self, pool: &Pool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "sell spmv: y length mismatch");
        let njobs = self.job_chunks.len().saturating_sub(1);
        let out = DisjointMut::new(y);
        // Shape-only serial/parallel decision, as in the CSR kernel.
        if njobs <= 1 {
            if njobs == 1 {
                // SAFETY: the single job owns every chunk.
                unsafe { self.spmv_chunks(0, self.job_chunks[1], x, &out) };
            }
            return;
        }
        pool.run(njobs, &|j| {
            sync_trace::record_read(x, 0, x.len());
            // SAFETY: job boundaries are strictly increasing, so chunk
            // ranges are pairwise disjoint.
            unsafe { self.spmv_chunks(self.job_chunks[j], self.job_chunks[j + 1], x, &out) };
        });
    }

    /// [`SellMatrix::spmv_with`] on the global pool.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_with(&pscg_par::global(), x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{poisson3d_7pt, Grid3};

    fn csr_reference(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        for r in 0..a.nrows() {
            let mut acc = 0.0;
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                acc += a.row_vals(r)[k] * x[c];
            }
            y[r] = acc;
        }
        y
    }

    fn ragged() -> CsrMatrix {
        // Mixed row lengths incl. an empty row and one row far longer than
        // the chunk height (forcing several tail columns past min_len).
        let mut coo = crate::coo::CooMatrix::new(20, 20);
        for c in 0..20 {
            coo.push(3, c, (c as f64 + 1.0) * 0.25).unwrap();
        }
        for r in [0usize, 1, 5, 9, 12, 19] {
            coo.push(r, r, 2.0 + r as f64).unwrap();
            if r + 1 < 20 {
                coo.push(r, r + 1, -1.0).unwrap();
            }
        }
        // row 7 stays empty
        coo.to_csr()
    }

    #[test]
    fn round_trips_bitwise_to_csr() {
        for a in [ragged(), poisson3d_7pt(Grid3::cube(5), None)] {
            let s = SellMatrix::from_csr(&a).unwrap();
            assert_eq!(s.to_csr(), a);
            assert_eq!(s.nnz(), a.nnz());
            assert!(s.fill_ratio() >= 1.0);
        }
    }

    #[test]
    fn spmv_bitwise_matches_csr_any_threads() {
        pscg_par::knobs::set_spmv_chunk_nnz(16); // force several jobs
        let a = ragged();
        let s = SellMatrix::from_csr(&a).unwrap();
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
        let want = csr_reference(&a, &x);
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let mut y = vec![f64::NAN; 20];
            s.spmv_with(&pool, &x, &mut y);
            assert_eq!(y, want, "sell spmv differs at {threads} threads");
        }
        pscg_par::knobs::set_spmv_chunk_nnz(pscg_par::knobs::DEFAULT_SPMV_CHUNK_NNZ);
    }

    #[test]
    fn empty_rows_produce_zero_not_stale_values() {
        let a = ragged();
        let s = SellMatrix::from_csr(&a).unwrap();
        let x = vec![1.0; 20];
        let mut y = vec![f64::NAN; 20];
        s.spmv(&x, &mut y);
        assert_eq!(y[7], 0.0, "empty row must yield exactly 0.0");
    }

    #[test]
    fn row_longer_than_slice_width_of_neighbours() {
        // Row 3 has 20 entries; its chunk-mates have ≤ 2 — the tail loop
        // must process 18 guarded columns without touching padding.
        let a = ragged();
        let s = SellMatrix::from_csr(&a).unwrap();
        let x: Vec<f64> = (0..20).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let want = csr_reference(&a, &x);
        let mut y = vec![0.0; 20];
        s.spmv(&x, &mut y);
        assert_eq!(y[3], want[3]);
        assert_eq!(y, want);
    }

    #[test]
    fn single_row_matrix() {
        let a = CsrMatrix::from_raw_parts(1, 4, vec![0, 3], vec![0, 2, 3], vec![1.5, -2.0, 0.5])
            .unwrap();
        let s = SellMatrix::from_csr(&a).unwrap();
        assert_eq!(s.to_csr(), a);
        let mut y = vec![0.0];
        s.spmv(&[2.0, 9.0, 1.0, 4.0], &mut y);
        assert_eq!(y[0], 1.5 * 2.0 + -2.0 * 1.0 + 0.5 * 4.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CsrMatrix::from_raw_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        let s = SellMatrix::from_csr(&a).unwrap();
        assert_eq!(s.padded_nnz(), 0);
        assert_eq!(s.fill_ratio(), 1.0);
        let mut y = vec![];
        s.spmv(&[], &mut y);
        assert_eq!(s.to_csr(), a);
    }

    #[test]
    fn padding_never_enters_the_sum() {
        // Padding slots hold col 0 / val 0.0. With x[0] = inf, multiplying
        // a padding slot in would contribute 0.0·inf = NaN; the per-row
        // length guard must keep the result bitwise equal to CSR.
        let a = CsrMatrix::from_raw_parts(
            9,
            9,
            vec![0, 1, 2, 2, 2, 2, 2, 2, 2, 2],
            vec![1, 2],
            vec![-0.0, 5.0],
        )
        .unwrap();
        let s = SellMatrix::from_csr(&a).unwrap();
        let mut x = vec![1.0; 9];
        x[0] = f64::INFINITY;
        let want = csr_reference(&a, &x);
        let mut y = vec![f64::NAN; 9];
        s.spmv(&x, &mut y);
        assert!(y.iter().all(|v| !v.is_nan()), "padding leaked into a sum");
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
}

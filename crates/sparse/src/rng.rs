//! Minimal seeded pseudo-random number generation.
//!
//! The reproduction environment is fully offline, so instead of depending on
//! the `rand` crate this module provides the one generator the repo needs: a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream. It is
//! deterministic across platforms and fast enough for matrix assembly; it is
//! **not** cryptographic and is not meant to be. Every consumer in the
//! workspace (surrogate matrices, property-style tests, benchmark inputs)
//! seeds it explicitly so runs are reproducible bit-for-bit.

/// A SplitMix64 pseudo-random generator.
///
/// The output sequence is a bijective scramble of the counter
/// `seed + k·0x9e3779b97f4a7c15`, so every seed yields a full-period,
/// well-distributed 64-bit stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform needs lo < hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below needs a positive bound");
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for any
        // bound this workspace uses and irrelevant for test-input generation.
        (self.next_f64() * n as f64) as usize % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_draws_stay_in_range_and_fill_it() {
        let mut g = SplitMix64::new(7);
        let draws: Vec<f64> = (0..1000).map(|_| g.next_f64()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = g.uniform(-1.5, 1.5);
            assert!((-1.5..1.5).contains(&v));
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut g = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[g.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

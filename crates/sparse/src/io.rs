//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which covers the
//! SPD matrices of the SuiteSparse collection the paper evaluates on. Pattern
//! entries are read as `1.0`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market file from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::ParseError("empty file".into()))?
        .map_err(SparseError::from)?;
    let headers: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if headers.len() < 4 || headers[0] != "%%matrixmarket" || headers[1] != "matrix" {
        return Err(SparseError::ParseError(format!(
            "bad header line: {header}"
        )));
    }
    if headers[2] != "coordinate" {
        return Err(SparseError::ParseError(format!(
            "unsupported format {} (only coordinate is supported)",
            headers[2]
        )));
    }
    let pattern = match headers[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::ParseError(format!(
                "unsupported field type {other}"
            )))
        }
    };
    let symmetry = match headers.get(4).map(String::as_str) {
        None | Some("general") => Symmetry::General,
        Some("symmetric") => Symmetry::Symmetric,
        Some(other) => {
            return Err(SparseError::ParseError(format!(
                "unsupported symmetry {other}"
            )))
        }
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::ParseError("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::ParseError(format!("bad size line '{size_line}': {e}")))?;
    if dims.len() != 3 {
        return Err(SparseError::ParseError(format!(
            "size line needs 3 fields: {size_line}"
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    // Trust the declared count only up to what the stream can actually
    // hold: a malformed size line must not become a giant allocation.
    let cap = if symmetry == Symmetry::Symmetric {
        nnz.saturating_mul(2)
    } else {
        nnz
    }
    .min(1 << 28);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if seen == nnz {
            return Err(SparseError::ParseError(format!(
                "more entries than the header's {nnz}: {trimmed}"
            )));
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::ParseError(format!("bad entry: {trimmed}")))?
            .parse()
            .map_err(|e| SparseError::ParseError(format!("bad row in '{trimmed}': {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::ParseError(format!("bad entry: {trimmed}")))?
            .parse()
            .map_err(|e| SparseError::ParseError(format!("bad col in '{trimmed}': {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::ParseError(format!("missing value: {trimmed}")))?
                .parse()
                .map_err(|e| SparseError::ParseError(format!("bad value in '{trimmed}': {e}")))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::ParseError(format!(
                "indices are 1-based: {trimmed}"
            )));
        }
        match symmetry {
            Symmetry::General => coo.push(r - 1, c - 1, v)?,
            Symmetry::Symmetric => coo.push_sym(r - 1, c - 1, v)?,
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::ParseError(format!(
            "entry count mismatch: header said {nnz}, file had {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Writes a matrix in `coordinate real general` format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, writer: W) -> Result<(), SparseError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by pscg-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for r in 0..a.nrows() {
        for (k, &c) in a.row_cols(r).iter().enumerate() {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, a.row_vals(r)[k])?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 2 3\n\
                    1 1 4.0\n\
                    1 2 -1.0\n\
                    2 2 3.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(1, 1), 3.5);
    }

    #[test]
    fn parses_symmetric_and_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn parses_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 3\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
    }

    /// Every malformed-input class yields the matching *typed* error —
    /// never a panic — so loaders can be driven by untrusted files.
    #[test]
    fn malformed_inputs_yield_typed_errors() {
        let parse_err = |text: &str| match read_matrix_market(text.as_bytes()) {
            Err(e) => e,
            Ok(_) => panic!("accepted malformed input: {text:?}"),
        };
        // Empty file / truncated before the size line.
        assert!(matches!(parse_err(""), SparseError::ParseError(_)));
        assert!(matches!(
            parse_err("%%MatrixMarket matrix coordinate real general\n% only comments\n"),
            SparseError::ParseError(_)
        ));
        // Size line with the wrong arity or garbage numbers.
        let head = "%%MatrixMarket matrix coordinate real general\n";
        assert!(matches!(
            parse_err(&format!("{head}2 2\n")),
            SparseError::ParseError(_)
        ));
        assert!(matches!(
            parse_err(&format!("{head}two 2 1\n1 1 1.0\n")),
            SparseError::ParseError(_)
        ));
        // Truncated entry stream (header promises more than the file has).
        assert!(matches!(
            parse_err(&format!("{head}2 2 2\n1 1 1.0\n")),
            SparseError::ParseError(_)
        ));
        // Excess entries beyond the declared count.
        assert!(matches!(
            parse_err(&format!("{head}2 2 1\n1 1 1.0\n2 2 2.0\n")),
            SparseError::ParseError(_)
        ));
        // Entry truncated mid-line (value missing) and a garbage value.
        assert!(matches!(
            parse_err(&format!("{head}2 2 1\n1 1\n")),
            SparseError::ParseError(_)
        ));
        assert!(matches!(
            parse_err(&format!("{head}2 2 1\n1 1 abc\n")),
            SparseError::ParseError(_)
        ));
        // Indices outside the declared shape surface the coordinate error.
        assert!(matches!(
            parse_err(&format!("{head}2 2 1\n3 1 1.0\n")),
            SparseError::IndexOutOfBounds { .. }
        ));
        // Unsupported field and symmetry keywords.
        assert!(matches!(
            parse_err("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
            SparseError::ParseError(_)
        ));
        assert!(matches!(
            parse_err("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"),
            SparseError::ParseError(_)
        ));
    }

    #[test]
    fn absurd_declared_nnz_does_not_preallocate() {
        // The size line claims ~10^18 entries; the reader must fail on the
        // truncated stream, not abort in the allocator.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 999999999999999999\n\
                    1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::ParseError(_))
        ));
    }

    #[test]
    fn roundtrip_write_read() {
        let a = crate::stencil::poisson2d_5pt(4, 5, 1.0, 0.5);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }
}

//! Symmetric CSR storage: strictly-upper + diagonal, half the matrix
//! traffic of general CSR on SPD operators.
//!
//! For an exactly symmetric matrix, row `r` of `y = A x` decomposes as
//!
//! ```text
//!   y[r] = Σ_{c<r} a_rc·x_c   (ascending c — the "scatter" part)
//!        + a_rr·x_r
//!        + Σ_{c>r} a_rc·x_c   (ascending c — the "gather" part)
//! ```
//!
//! and `a_rc = a_cr` bitwise lets the scatter part be produced from the
//! *stored upper* entries of earlier rows: entry `(r', c)` with `r' < c`
//! contributes `a_r'c·x_c` to `y[r']` (gather) and `a_r'c·x_r'` to `y[c]`
//! (scatter). Each stored entry is read once — ≈6 B per logical nnz with
//! `u32` upper column indices, against 16 B for CSR.
//!
//! **Determinism argument.** The scalar CSR kernel folds row `r`
//! left-associatively over ascending columns from an initial `0.0`.
//! Scatter contributions to `y[r]` come from source rows `r' < r`; in
//! ascending-`r'` order they are exactly the ascending-column lower part
//! of row `r`. So any schedule that (a) accumulates the scatter terms of
//! each target in ascending source order, starting from `0.0`, and then
//! (b) adds the diagonal and the ascending gather terms, reproduces the
//! CSR chain bitwise:
//!
//! * **Serial in-place path** (one chunk): zero `y`, sweep rows ascending;
//!   at row `r`, `y[r]` already holds its scatter prefix (sources `< r`
//!   ran first, each `+=` in ascending order), so finish it with diagonal
//!   + gathers, then scatter `y[c] += a_rc·x_r` for the stored `c > r`.
//! * **Two-phase scatter-slot path** (several chunks): phase 1 writes each
//!   stored entry's product `a_r'c·x_r'` into a *pre-assigned slot* of a
//!   scratch buffer laid out per target in ascending source order (a CSC
//!   view of the strictly-upper part, built at construction). Phase 2
//!   folds each target's slots in slot order, then diagonal + gathers.
//!   Individual products — never pre-summed per-thread partials — are
//!   what is stored, because `(a+b)+(c+d)` differs from the CSR chain
//!   `((a+b)+c)+d`. Slot assignment depends only on the structure, so the
//!   result is bitwise identical at any thread count, and bitwise equal to
//!   the serial path and to CSR.
//!
//! The serial/parallel decision is shape-only: chunks are stored-nnz
//! balanced against [`pscg_par::knobs::sym_chunk_nnz`], whose default is
//! large enough that typical problems take the in-place path (no scratch
//! allocated at all).

use std::sync::Mutex;

use pscg_par::{sync_trace, DisjointMut, Pool};

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A symmetric sparse matrix stored as strictly-upper triangle + diagonal.
#[derive(Debug)]
pub struct SymCsrMatrix {
    n: usize,
    /// Dense diagonal (zeros for unstored diagonal entries).
    diag: Vec<f64>,
    /// Strictly-upper row pointers (`n + 1`).
    up_ptr: Vec<usize>,
    /// Strictly-upper column indices, ascending per row.
    up_cols: Vec<u32>,
    /// Strictly-upper values.
    up_vals: Vec<f64>,
    /// Row chunk boundaries, balanced by stored nnz (diag + upper) against
    /// [`pscg_par::knobs::sym_chunk_nnz`] at construction.
    chunk_rows: Vec<usize>,
    /// Scatter-slot ranges per target row (`n + 1`): slots of target `t`
    /// are ordered by ascending source row. Built only when parallel.
    scatter_ptr: Vec<usize>,
    /// Slot index of each stored upper entry (parallel path only).
    scatter_slot: Vec<usize>,
    /// Scratch slot buffer, lazily sized on first parallel apply. A Mutex
    /// because `spmv` takes `&self`; concurrent applies on one matrix
    /// serialize here (they would fight for memory bandwidth anyway).
    scratch: Mutex<Vec<f64>>,
}

impl SymCsrMatrix {
    /// Converts a CSR matrix, rejecting non-square input
    /// ([`SparseError::NotSquare`]) and input that is not *exactly*
    /// (bitwise) symmetric ([`SparseError::NotSymmetric`]) — bitwise
    /// symmetry is what makes the halved-storage kernel bitwise equal to
    /// the CSR kernel. Fails with [`SparseError::InvalidArgument`] past
    /// `u32::MAX` columns.
    pub fn try_from_csr(a: &CsrMatrix) -> Result<SymCsrMatrix, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if a.ncols() > u32::MAX as usize {
            return Err(SparseError::InvalidArgument(format!(
                "symmetric CSR uses u32 indices; {} columns exceed u32::MAX",
                a.ncols()
            )));
        }
        let n = a.nrows();
        let t = a.transpose();
        if t.row_ptr() != a.row_ptr() || t.col_idx() != a.col_idx() {
            // Structurally asymmetric: report the first stored entry whose
            // mirror is absent (or, failing that, the first structural
            // difference by row scan).
            for r in 0..n {
                for &c in a.row_cols(r) {
                    if !a.row_cols(c).contains(&r) {
                        return Err(SparseError::NotSymmetric { row: r, col: c });
                    }
                }
            }
            return Err(SparseError::NotSymmetric { row: 0, col: 0 });
        }
        for r in 0..n {
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                // Bitwise comparison: NaN or ±0.0 mismatches also reject.
                if a.row_vals(r)[k].to_bits() != t.row_vals(r)[k].to_bits() {
                    return Err(SparseError::NotSymmetric { row: r, col: c });
                }
            }
        }
        let mut diag = vec![0.0f64; n];
        let mut up_ptr = Vec::with_capacity(n + 1);
        up_ptr.push(0usize);
        let mut up_cols: Vec<u32> = Vec::new();
        let mut up_vals: Vec<f64> = Vec::new();
        for r in 0..n {
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                let v = a.row_vals(r)[k];
                if c == r {
                    diag[r] = v;
                } else if c > r {
                    up_cols.push(c as u32);
                    up_vals.push(v);
                }
            }
            up_ptr.push(up_cols.len());
        }
        // Stored-nnz-balanced row chunks (diag counts 1 per row).
        let target = pscg_par::knobs::sym_chunk_nnz().max(1);
        let mut chunk_rows = vec![0usize];
        let mut start_work = 0usize;
        for r in 0..n {
            let work = (r + 1) + up_ptr[r + 1];
            if work - start_work >= target {
                chunk_rows.push(r + 1);
                start_work = work;
            }
        }
        // pscg-lint: allow(panic-in-hot-path, chunk_rows starts with the 0 entry pushed above)
        if *chunk_rows.last().unwrap() != n {
            chunk_rows.push(n);
        }
        // Scatter-slot layout, only needed on the two-phase path: slots of
        // target t ordered by ascending source row — exactly the order a
        // source-ascending sweep appends them in.
        let (scatter_ptr, scatter_slot) = if chunk_rows.len() > 2 {
            let mut ptr = vec![0usize; n + 1];
            for &c in &up_cols {
                ptr[c as usize + 1] += 1;
            }
            for i in 0..n {
                ptr[i + 1] += ptr[i];
            }
            let mut cursor = ptr.clone();
            let mut slot = vec![0usize; up_cols.len()];
            for r in 0..n {
                for k in up_ptr[r]..up_ptr[r + 1] {
                    let t = up_cols[k] as usize;
                    slot[k] = cursor[t];
                    cursor[t] += 1;
                }
            }
            (ptr, slot)
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(SymCsrMatrix {
            n,
            diag,
            up_ptr,
            up_cols,
            up_vals,
            chunk_rows,
            scatter_ptr,
            scatter_slot,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Matrix dimension.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.n
    }

    /// Stored entries (diagonal + strictly upper).
    #[inline]
    pub fn stored_nnz(&self) -> usize {
        self.n + self.up_vals.len()
    }

    /// Logical nnz of the full (CSR-equivalent) matrix, counting only the
    /// actually stored diagonal as nonzero is not tracked — this is the
    /// mirror-expanded count `2·upper + diag_slots` used for GFLOP/s.
    #[inline]
    pub fn logical_nnz(&self) -> usize {
        self.n + 2 * self.up_vals.len()
    }

    /// Serial in-place kernel over all rows (see module docs).
    fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        let (vals, cols) = (&self.up_vals[..], &self.up_cols[..]);
        for r in 0..self.n {
            let mut acc = y[r];
            acc += self.diag[r] * x[r];
            let (lo, hi) = (self.up_ptr[r], self.up_ptr[r + 1]);
            for k in lo..hi {
                // SAFETY: `k < up_ptr[n] == vals.len()` and stored columns
                // are `< n == x.len() == y.len()` by construction.
                // Unchecked: bounds checks dominate this loop.
                unsafe {
                    acc += vals.get_unchecked(k) * x.get_unchecked(*cols.get_unchecked(k) as usize);
                }
            }
            y[r] = acc;
            let xr = x[r];
            for k in lo..hi {
                // SAFETY: as above.
                unsafe {
                    *y.get_unchecked_mut(*cols.get_unchecked(k) as usize) +=
                        vals.get_unchecked(k) * xr;
                }
            }
        }
    }

    /// `y = A x` on an explicit pool — bitwise identical to the scalar CSR
    /// kernel on the full matrix, at any thread count.
    pub fn spmv_with(&self, pool: &Pool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "sym spmv: x length mismatch");
        assert_eq!(y.len(), self.n, "sym spmv: y length mismatch");
        let nchunks = self.chunk_rows.len().saturating_sub(1);
        // Shape-only decision (chunk count comes from structure + knob).
        if nchunks <= 1 {
            self.spmv_serial(x, y);
            return;
        }
        let mut scratch = self.scratch.lock().unwrap();
        scratch.resize(self.up_vals.len(), 0.0);
        // Phase 1: every stored upper entry writes its scatter product into
        // its pre-assigned slot (disjoint by construction: one entry, one
        // slot).
        {
            let slots = DisjointMut::new(&mut scratch[..]);
            pool.run(nchunks, &|c| {
                let (rlo, rhi) = (self.chunk_rows[c], self.chunk_rows[c + 1]);
                sync_trace::record_read(x, 0, x.len());
                let record = sync_trace::is_enabled();
                for r in rlo..rhi {
                    let xr = x[r];
                    for k in self.up_ptr[r]..self.up_ptr[r + 1] {
                        let s = self.scatter_slot[k];
                        if record {
                            sync_trace::record(sync_trace::SyncEvent::BufWrite {
                                buf: slots.addr(),
                                lo: s,
                                hi: s + 1,
                            });
                        }
                        // SAFETY: slot indices are a permutation of
                        // 0..up_nnz, and each entry k belongs to exactly
                        // one row chunk — single writer per slot.
                        *unsafe { slots.element(s) } = self.up_vals[k] * xr;
                    }
                }
            });
        }
        // Phase 2: each target row folds its slots in slot order (ascending
        // source), then diagonal + gathers — the CSR chain.
        let scratch = &scratch[..];
        let out = DisjointMut::new(y);
        pool.run(nchunks, &|c| {
            let (rlo, rhi) = (self.chunk_rows[c], self.chunk_rows[c + 1]);
            sync_trace::record_read(x, 0, x.len());
            sync_trace::record_read(scratch, 0, scratch.len());
            // SAFETY: row chunks are pairwise disjoint.
            let yy = unsafe { out.range(rlo, rhi) };
            let (vals, cols) = (&self.up_vals[..], &self.up_cols[..]);
            for (out_r, r) in yy.iter_mut().zip(rlo..rhi) {
                let mut acc = 0.0;
                for s in self.scatter_ptr[r]..self.scatter_ptr[r + 1] {
                    // SAFETY: `scatter_ptr[n] == scratch.len()` and the
                    // pointer array is monotone, so `s` is in bounds.
                    acc += unsafe { scratch.get_unchecked(s) };
                }
                acc += self.diag[r] * x[r];
                for k in self.up_ptr[r]..self.up_ptr[r + 1] {
                    // SAFETY: `k < up_ptr[n] == vals.len()` and stored
                    // columns are `< n == x.len()` by construction.
                    unsafe {
                        acc += vals.get_unchecked(k)
                            * x.get_unchecked(*cols.get_unchecked(k) as usize);
                    }
                }
                *out_r = acc;
            }
        });
    }

    /// [`SymCsrMatrix::spmv_with`] on the global pool.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_with(&pscg_par::global(), x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{poisson3d_7pt, Grid3};

    fn csr_reference(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        for r in 0..a.nrows() {
            let mut acc = 0.0;
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                acc += a.row_vals(r)[k] * x[c];
            }
            y[r] = acc;
        }
        y
    }

    #[test]
    fn serial_path_is_bitwise_csr() {
        let a = poisson3d_7pt(Grid3::cube(6), None);
        let s = SymCsrMatrix::try_from_csr(&a).unwrap();
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut y = vec![f64::NAN; a.nrows()];
        s.spmv(&x, &mut y);
        assert_eq!(y, csr_reference(&a, &x));
        assert_eq!(s.logical_nnz(), a.nnz());
        assert!(s.stored_nnz() < a.nnz());
    }

    #[test]
    fn two_phase_path_is_bitwise_csr_any_threads() {
        // Force several chunks so the scatter-slot path runs.
        pscg_par::knobs::set_sym_chunk_nnz(64);
        let a = poisson3d_7pt(Grid3::cube(6), None);
        let s = SymCsrMatrix::try_from_csr(&a).unwrap();
        assert!(
            s.chunk_rows.len() > 2,
            "test must exercise the 2-phase path"
        );
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.31).sin()).collect();
        let want = csr_reference(&a, &x);
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let mut y = vec![f64::NAN; a.nrows()];
            s.spmv_with(&pool, &x, &mut y);
            assert_eq!(y, want, "sym spmv differs at {threads} threads");
        }
        pscg_par::knobs::set_sym_chunk_nnz(pscg_par::knobs::DEFAULT_SYM_CHUNK_NNZ);
    }

    #[test]
    fn rejects_non_symmetric_with_typed_error() {
        // Structurally asymmetric.
        let a = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![2.0, 1.0, 2.0])
            .unwrap();
        match SymCsrMatrix::try_from_csr(&a) {
            Err(SparseError::NotSymmetric { row: 0, col: 1 }) => {}
            other => panic!("expected NotSymmetric(0,1), got {other:?}"),
        }
        // Structurally symmetric, numerically not.
        let b = CsrMatrix::from_raw_parts(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![2.0, 1.0, 1.5, 2.0],
        )
        .unwrap();
        assert!(matches!(
            SymCsrMatrix::try_from_csr(&b),
            Err(SparseError::NotSymmetric { row: 0, col: 1 })
        ));
        // Non-square.
        let c = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert!(matches!(
            SymCsrMatrix::try_from_csr(&c),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn missing_diagonal_entries_are_zero() {
        // Symmetric matrix with no stored diagonal on row 1.
        let a = CsrMatrix::from_raw_parts(
            3,
            3,
            vec![0, 2, 4, 6],
            vec![0, 1, 0, 2, 1, 2],
            vec![4.0, -1.0, -1.0, -1.0, -1.0, 4.0],
        )
        .unwrap();
        assert!(a.is_symmetric(0.0));
        let s = SymCsrMatrix::try_from_csr(&a).unwrap();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        s.spmv(&x, &mut y);
        assert_eq!(y.to_vec(), csr_reference(&a, &x));
    }
}

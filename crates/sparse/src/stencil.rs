//! Structured-grid operators: the paper's 125-point 3-D Poisson problem and
//! friends.
//!
//! The evaluation problem of the paper is "the Poisson differential equation
//! on a regular 3D grid discretized with a 125-point stencil" (§VI-A). A
//! 125-point stencil couples each grid point to the full 5×5×5 cube around it
//! (radius-2 box). We build the operator as a symmetric M-matrix:
//!
//! * off-diagonal weight for offset `(dx,dy,dz)`: `-c / (dx²+dy²+dz²)`,
//! * diagonal: the sum of **all** stencil weights, including those cut off by
//!   the boundary (homogeneous Dirichlet conditions),
//!
//! which is symmetric positive definite (weakly diagonally dominant with
//! strict dominance on boundary rows, and irreducible). The same generator
//! with radius 1 yields the 27-point stencil; dedicated generators provide
//! the classic 7-point (3-D) and 5-point (2-D) Laplacians, with optional
//! per-cell coefficient fields for the heterogeneous surrogate problems.
//!
//! Generation writes CSR arrays directly — neighbours enumerated in
//! `(dz, dy, dx)` lexicographic order have strictly increasing linear column
//! indices, so no sort is needed. This matters at the paper's scale: the
//! 125-pt operator on 100³ has ~1.2·10⁸ stored entries.

use crate::csr::CsrMatrix;

/// A regular 3-D grid with lexicographic ordering: `idx = x + nx·(y + ny·z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Points along x (fastest-varying index).
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z (slowest-varying index).
    pub nz: usize,
}

impl Grid3 {
    /// Creates a grid; all extents must be positive.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "Grid3: extents must be positive"
        );
        Grid3 { nx, ny, nz }
    }

    /// A cubic grid `n × n × n`.
    pub fn cube(n: usize) -> Self {
        Grid3::new(n, n, n)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True for a degenerate grid (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Grid3::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }
}

/// A stencil offset with its (positive) coupling weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilEntry {
    /// Offset along x.
    pub dx: i64,
    /// Offset along y.
    pub dy: i64,
    /// Offset along z.
    pub dz: i64,
    /// Positive coupling strength; enters the matrix as `-w` off-diagonal.
    pub w: f64,
}

/// Builds the offset list of a radius-`r` box stencil (`(2r+1)³ − 1`
/// neighbours) with inverse-square-distance weights, sorted so the generated
/// column indices are increasing.
pub fn box_stencil(radius: i64) -> Vec<StencilEntry> {
    assert!(radius >= 1, "box_stencil: radius must be >= 1");
    let mut offsets = Vec::new();
    for dz in -radius..=radius {
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let d2 = (dx * dx + dy * dy + dz * dz) as f64;
                offsets.push(StencilEntry {
                    dx,
                    dy,
                    dz,
                    w: 1.0 / d2,
                });
            }
        }
    }
    offsets
}

/// The 7-point (face-neighbour) stencil with unit weights — the classic
/// second-order finite-difference Laplacian.
pub fn face_stencil_3d() -> Vec<StencilEntry> {
    vec![
        StencilEntry {
            dx: 0,
            dy: 0,
            dz: -1,
            w: 1.0,
        },
        StencilEntry {
            dx: 0,
            dy: -1,
            dz: 0,
            w: 1.0,
        },
        StencilEntry {
            dx: -1,
            dy: 0,
            dz: 0,
            w: 1.0,
        },
        StencilEntry {
            dx: 1,
            dy: 0,
            dz: 0,
            w: 1.0,
        },
        StencilEntry {
            dx: 0,
            dy: 1,
            dz: 0,
            w: 1.0,
        },
        StencilEntry {
            dx: 0,
            dy: 0,
            dz: 1,
            w: 1.0,
        },
    ]
}

/// The Serena-surrogate stencil: the 26 box neighbours plus the 6 distance-2
/// face neighbours plus the 12 in-plane `(±2, ±2, 0)`-type neighbours — 44
/// off-diagonals, giving ≈45 nnz/row to match Serena's ~46 (see DESIGN.md).
pub fn wide_stencil_3d() -> Vec<StencilEntry> {
    let mut offsets = box_stencil(1);
    for axis in 0..3 {
        for sign in [-2i64, 2] {
            let (mut dx, mut dy, mut dz) = (0, 0, 0);
            match axis {
                0 => dx = sign,
                1 => dy = sign,
                _ => dz = sign,
            }
            offsets.push(StencilEntry {
                dx,
                dy,
                dz,
                w: 0.25,
            });
        }
    }
    for &(a, b) in &[(2i64, 2i64), (2, -2), (-2, 2), (-2, -2)] {
        offsets.push(StencilEntry {
            dx: a,
            dy: b,
            dz: 0,
            w: 0.125,
        });
        offsets.push(StencilEntry {
            dx: a,
            dy: 0,
            dz: b,
            w: 0.125,
        });
        offsets.push(StencilEntry {
            dx: 0,
            dy: a,
            dz: b,
            w: 0.125,
        });
    }
    sort_offsets(&mut offsets);
    offsets
}

/// Sorts offsets into `(dz, dy, dx)` lexicographic order so generated column
/// indices increase within every row.
pub fn sort_offsets(offsets: &mut [StencilEntry]) {
    offsets.sort_by_key(|e| (e.dz, e.dy, e.dx));
}

/// Assembles the SPD operator for `stencil` on `grid` with homogeneous
/// Dirichlet boundary conditions and an optional per-point coefficient field
/// `coeff` (length `grid.len()`, all positive).
///
/// Assembly is edge-based, as in finite-volume discretisations: the edge
/// `(i, j)` contributes `w · hmean(cᵢ, cⱼ)` (harmonic mean keeps symmetry)
/// to both diagonals and `−w · hmean(cᵢ, cⱼ)` to both off-diagonals, and an
/// edge leaving the domain contributes `w · cᵢ` to the diagonal only
/// (Dirichlet). The result is a sum of positive-semidefinite edge matrices
/// plus a positive boundary term, hence SPD, with the conditioning of a
/// Laplacian (κ = Θ(h⁻²)) rather than a shifted operator.
pub fn assemble(grid: Grid3, stencil: &[StencilEntry], coeff: Option<&[f64]>) -> CsrMatrix {
    let n = grid.len();
    if let Some(c) = coeff {
        assert_eq!(c.len(), n, "assemble: coefficient field length mismatch");
    }
    debug_assert!(
        stencil
            .windows(2)
            .all(|w| (w[0].dz, w[0].dy, w[0].dx) < (w[1].dz, w[1].dy, w[1].dx)),
        "assemble: stencil offsets must be sorted by (dz, dy, dx)"
    );

    let (nx, ny, nz) = (grid.nx as i64, grid.ny as i64, grid.nz as i64);
    // Count nnz per row first so the CSR arrays are allocated exactly once.
    let mut row_ptr = vec![0usize; n + 1];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut cnt = 1usize; // diagonal
                for e in stencil {
                    let (xx, yy, zz) = (x + e.dx, y + e.dy, z + e.dz);
                    if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
                        cnt += 1;
                    }
                }
                let r = (x + nx * (y + ny * z)) as usize;
                row_ptr[r + 1] = cnt;
            }
        }
    }
    for i in 0..n {
        row_ptr[i + 1] += row_ptr[i];
    }
    let nnz = row_ptr[n];
    let mut col_idx = vec![0usize; nnz];
    let mut vals = vec![0.0f64; nnz];

    let hmean = |a: f64, b: f64| 2.0 * a * b / (a + b);

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = (x + nx * (y + ny * z)) as usize;
                let ci = coeff.map_or(1.0, |c| c[r]);
                let mut k = row_ptr[r];
                let mut diag = 0.0;
                let mut diag_slot = usize::MAX;
                for e in stencil {
                    let (xx, yy, zz) = (x + e.dx, y + e.dy, z + e.dz);
                    if !(xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz) {
                        // Edge leaves the domain: Dirichlet boundary term.
                        diag += e.w * ci;
                        continue;
                    }
                    let c = (xx + nx * (yy + ny * zz)) as usize;
                    if diag_slot == usize::MAX && c > r {
                        diag_slot = k;
                        k += 1;
                    }
                    let cj = coeff.map_or(1.0, |cc| cc[c]);
                    let w = e.w * hmean(ci, cj);
                    diag += w;
                    col_idx[k] = c;
                    vals[k] = -w;
                    k += 1;
                }
                if diag_slot == usize::MAX {
                    diag_slot = k;
                    k += 1;
                }
                col_idx[diag_slot] = r;
                vals[diag_slot] = diag;
                debug_assert_eq!(k, row_ptr[r + 1]);
            }
        }
    }

    CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, vals)
        .expect("stencil assembly produced invalid CSR") // pscg-lint: allow(panic-in-hot-path, assembly invariant: the stencil emits valid CSR by construction)
}

/// The paper's evaluation operator: 3-D Poisson, 125-point (radius-2 box)
/// stencil, homogeneous Dirichlet boundary.
pub fn poisson3d_125pt(grid: Grid3) -> CsrMatrix {
    assemble(grid, &box_stencil(2), None)
}

/// 3-D Poisson with the 27-point (radius-1 box) stencil.
pub fn poisson3d_27pt(grid: Grid3) -> CsrMatrix {
    assemble(grid, &box_stencil(1), None)
}

/// 3-D Poisson with the classic 7-point stencil, optional coefficients.
pub fn poisson3d_7pt(grid: Grid3, coeff: Option<&[f64]>) -> CsrMatrix {
    assemble(grid, &face_stencil_3d(), coeff)
}

/// 2-D Poisson with the 5-point stencil on an `nx × ny` grid, with anisotropy
/// `(ax, ay)` — the ecology2 surrogate shape.
pub fn poisson2d_5pt(nx: usize, ny: usize, ax: f64, ay: f64) -> CsrMatrix {
    let grid = Grid3::new(nx, ny, 1);
    let stencil = vec![
        StencilEntry {
            dx: 0,
            dy: -1,
            dz: 0,
            w: ay,
        },
        StencilEntry {
            dx: -1,
            dy: 0,
            dz: 0,
            w: ax,
        },
        StencilEntry {
            dx: 1,
            dy: 0,
            dz: 0,
            w: ax,
        },
        StencilEntry {
            dx: 0,
            dy: 1,
            dz: 0,
            w: ay,
        },
    ];
    assemble(grid, &stencil, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_roundtrips() {
        let g = Grid3::new(3, 4, 5);
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.idx(x, y, z), i);
        }
    }

    #[test]
    fn box_stencil_sizes() {
        assert_eq!(box_stencil(1).len(), 26);
        assert_eq!(box_stencil(2).len(), 124);
        assert_eq!(wide_stencil_3d().len(), 44);
    }

    #[test]
    fn poisson125_interior_row_has_125_entries() {
        let g = Grid3::cube(7);
        let a = poisson3d_125pt(g);
        let center = g.idx(3, 3, 3);
        assert_eq!(a.row_cols(center).len(), 125);
        // Corner rows lose the out-of-domain couplings.
        assert_eq!(a.row_cols(g.idx(0, 0, 0)).len(), 27);
    }

    #[test]
    fn assembled_operator_is_spd_certified() {
        let a = poisson3d_125pt(Grid3::cube(5));
        assert!(a.is_symmetric(1e-14));
        assert!(a.is_diagonally_dominant());
        let b = poisson3d_7pt(Grid3::new(4, 3, 2), None);
        assert!(b.is_symmetric(1e-14));
        assert!(b.is_diagonally_dominant());
    }

    #[test]
    fn heterogeneous_coefficients_keep_symmetry() {
        let g = Grid3::new(4, 4, 3);
        let coeff: Vec<f64> = (0..g.len()).map(|i| 0.5 + (i % 7) as f64).collect();
        let a = poisson3d_7pt(g, Some(&coeff));
        assert!(a.is_symmetric(1e-13));
        assert!(a.is_diagonally_dominant());
    }

    #[test]
    fn poisson2d_5pt_matches_classic_laplacian_structure() {
        let a = poisson2d_5pt(3, 3, 1.0, 1.0);
        // Interior node (1,1) couples to its 4 face neighbours.
        assert_eq!(a.row_cols(4), &[1, 3, 4, 5, 7]);
        assert_eq!(a.get(4, 4), 4.0); // classic [-1 -1 4 -1 -1] row
        assert_eq!(a.get(4, 1), -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn dirichlet_diagonal_strictly_dominates_on_boundary() {
        let a = poisson2d_5pt(3, 3, 1.0, 1.0);
        // Corner row: diagonal 8.0, off-diagonal sum 2.0.
        let r = 0;
        let offsum: f64 = a
            .row_cols(r)
            .iter()
            .zip(a.row_vals(r))
            .filter(|(&c, _)| c != r)
            .map(|(_, v)| v.abs())
            .sum();
        assert!(a.get(r, r) > offsum);
    }

    #[test]
    fn spmv_on_constant_vector_vanishes_in_interior() {
        // Row sums of a Dirichlet Laplacian are zero in the interior and
        // positive on the boundary.
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let y = a.mul_vec(&vec![1.0; g.len()]);
        let interior = g.idx(2, 2, 2);
        let corner = g.idx(0, 0, 0);
        assert!(y[interior].abs() < 1e-14);
        assert!(y[corner] > 0.0);
    }
}

//! Small dense matrices and LU factorisation for the s-step "Scalar Work".
//!
//! Every iteration of the s-step methods solves two `s × s` linear systems
//! (for the β-matrix and the α-vector; paper §III, Algorithm 2 line 7). The
//! systems are tiny (`s ≤ ~8`), so a straightforward partially pivoted LU is
//! both fast and robust here.

use crate::error::SparseError;

/// A dense row-major matrix, sized for the `s × s` scalar work.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty());
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            nrows: rows.len(),
            ncols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] += v;
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                // pscg-lint: allow(float-eq, exact sparsity skip; only a stored zero is skippable)
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out.add(i, j, a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.ncols, "matvec: dimension mismatch");
        (0..self.nrows)
            .map(|i| {
                let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
                crate::kernels::dot(row, v)
            })
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// `self + other`.
    pub fn add_mat(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// In-place scale by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Symmetrises in place: `self ← (self + selfᵀ)/2` (square only).
    /// Used on Gram matrices that are symmetric in exact arithmetic.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let avg = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, avg);
                self.set(j, i, avg);
            }
        }
    }

    /// LU factorisation with partial pivoting.
    pub fn lu(&self) -> Result<LuFactors, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let n = self.nrows;
        let mut lu = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search down column k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            // pscg-lint: allow(float-eq, an exactly-zero pivot is the singularity being excluded)
            if best == 0.0 || !best.is_finite() {
                return Err(SparseError::SingularMatrix { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    lu.swap(k * n + c, p * n + c);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    lu[r * n + c] -= factor * lu[k * n + c];
                }
            }
        }
        Ok(LuFactors { n, lu, piv })
    }

    /// Solves `self · x = b` via LU; convenience for one-shot solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        Ok(self.lu()?.solve(b))
    }

    /// Solves `self · X = B` column by column.
    pub fn solve_mat(&self, b: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        let f = self.lu()?;
        let mut out = DenseMatrix::zeros(self.nrows, b.ncols);
        let mut col = vec![0.0; self.nrows];
        for j in 0..b.ncols {
            for i in 0..self.nrows {
                col[i] = b.get(i, j);
            }
            let x = f.solve(&col);
            for i in 0..self.nrows {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        crate::kernels::norm2(&self.data)
    }

    /// Symmetric eigendecomposition by the cyclic Jacobi rotation method:
    /// returns `(eigenvalues, V)` with `self = V · diag(λ) · Vᵀ` (V's
    /// columns are the eigenvectors). Intended for the small (`s × s`)
    /// matrices of the s-step scalar work, where it enables rank-revealing
    /// pseudo-inverse solves when the Krylov basis is deficient.
    pub fn sym_eig(&self) -> (Vec<f64>, DenseMatrix) {
        assert_eq!(self.nrows, self.ncols, "sym_eig needs a square matrix");
        let n = self.nrows;
        let mut a = self.clone();
        let mut v = DenseMatrix::identity(n);
        for _sweep in 0..64 {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += a.get(p, q).abs();
                }
            }
            if off < 1e-300 || off < 1e-15 * a.frobenius() {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    // Classic Jacobi rotation annihilating a_pq.
                    let theta = (a.get(q, q) - a.get(p, p)) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        let lam: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        (lam, v)
    }
}

/// LU factors `P·A = L·U` produced by [`DenseMatrix::lu`].
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl LuFactors {
    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "LuFactors::solve: dimension mismatch");
        let n = self.n;
        // Apply the row permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for k in 0..i {
                acc -= self.lu[i * n + k] * x[k];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.lu[i * n + k] * x[k];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }

    /// Order of the factorised matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Demotes the factors to fp32 storage (see [`LuFactorsF32`]).
    pub fn to_f32(&self) -> LuFactorsF32 {
        LuFactorsF32 {
            n: self.n,
            lu: self.lu.iter().map(|&v| v as f32).collect(),
            piv: self.piv.clone(),
        }
    }
}

/// fp32 copy of [`LuFactors`] for the demoted preconditioner apply: the
/// triangular solves run entirely in f32 (the right-hand side is rounded on
/// entry, the result widened on exit), halving factor traffic. Same
/// substitution order as [`LuFactors::solve`], so the result is a
/// deterministic function of the inputs.
#[derive(Debug, Clone)]
pub struct LuFactorsF32 {
    n: usize,
    lu: Vec<f32>,
    piv: Vec<usize>,
}

impl LuFactorsF32 {
    /// Solves `A x ≈ b` in f32 arithmetic, widening into `out`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n, "LuFactorsF32::solve_into: dimension");
        assert_eq!(out.len(), self.n, "LuFactorsF32::solve_into: dimension");
        let n = self.n;
        let mut x: Vec<f32> = self.piv.iter().map(|&p| b[p] as f32).collect();
        for i in 1..n {
            let mut acc = x[i];
            for k in 0..i {
                acc -= self.lu[i * n + k] * x[k];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.lu[i * n + k] * x[k];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        for (o, v) in out.iter_mut().zip(&x) {
            *o = f64::from(*v);
        }
    }

    /// Order of the factorised matrix.
    pub fn order(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_pivots_when_needed() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(SparseError::SingularMatrix { .. })));
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ab = a.matmul(&b);
        assert_eq!(ab.get(0, 0), 2.0);
        assert_eq!(ab.get(0, 1), 1.0);
        assert_eq!(ab.get(1, 0), 4.0);
        assert_eq!(ab.get(1, 1), 3.0);
        assert_eq!(a.transpose().get(0, 1), 3.0);
    }

    #[test]
    fn solve_mat_solves_all_columns() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let inv = a.solve_mat(&b).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symmetrize_averages() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, -1.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
    }

    #[test]
    fn sym_eig_recovers_known_spectrum() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (mut lam, _v) = a.sym_eig();
        lam.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((lam[0] - 1.0).abs() < 1e-12);
        assert!((lam[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eig_reconstructs_the_matrix() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 3.0, 0.5], &[-2.0, 0.5, 5.0]]);
        let (lam, v) = a.sym_eig();
        // A == V diag(lam) V^T
        let mut recon = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for (k, &l) in lam.iter().enumerate() {
                    acc += v.get(i, k) * l * v.get(j, k);
                }
                recon.set(i, j, acc);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
        // Eigenvectors are orthonormal.
        let vtv = v.transpose().matmul(&v);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sym_eig_handles_rank_deficiency() {
        // Rank-1 matrix: one eigenvalue n, the rest 0.
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (mut lam, _) = a.sym_eig();
        lam.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(lam[0].abs() < 1e-14);
        assert!((lam[1] - 2.0).abs() < 1e-12);
    }
}

//! Seeded synthetic surrogates for the SuiteSparse matrices used in the
//! paper's Table II and Figure 2.
//!
//! The reproduction environment has no access to the SuiteSparse collection,
//! so each matrix is replaced by a generator that matches the properties the
//! experiments depend on — dimension, nonzeros per row, symmetry, positive
//! definiteness and a Laplacian-like spectrum (slow CG convergence at tight
//! tolerances). See DESIGN.md §2 for the substitution rationale.
//!
//! | paper matrix | N (paper) | nnz (paper) | surrogate |
//! |---|---|---|---|
//! | ecology2  |   999 999 |  4 995 991 | 2-D 5-pt anisotropic diffusion, 999 × 1001 grid (exact N; nnz within 4 entries) |
//! | thermal2  | 1 228 045 |  8 580 313 | 3-D 7-pt heterogeneous thermal problem, 107³ grid (N within 0.3 %) |
//! | Serena    | 1 391 349 | 64 131 971 | 3-D 44-neighbour wide-stencil heterogeneous operator, 112×112×111 grid (N within 0.1 %, nnz within 3 %) |
//!
//! ecology2 genuinely *is* a 5-point grid operator (circuit-theory model of
//! animal movement on a 999 × 1001 landscape raster), so that surrogate is
//! structurally exact. thermal2 (unstructured FEM, steady-state thermal) and
//! Serena (gas-reservoir structural mechanics) are emulated with heterogeneous
//! coefficient fields: log-uniform cellwise conductivities for thermal2 and a
//! layered, high-contrast field for Serena.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::rng::SplitMix64;
use crate::stencil::{self, Grid3};

/// Which surrogate to generate; carries the paper's reference metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surrogate {
    /// ecology2: 999 999 unknowns, 4 995 991 nonzeros.
    Ecology2,
    /// thermal2: 1 228 045 unknowns, 8 580 313 nonzeros.
    Thermal2,
    /// Serena: 1 391 349 unknowns, 64 131 971 nonzeros.
    Serena,
}

impl Surrogate {
    /// The paper's name for the matrix.
    pub fn name(self) -> &'static str {
        match self {
            Surrogate::Ecology2 => "ecology2",
            Surrogate::Thermal2 => "thermal2",
            Surrogate::Serena => "Serena",
        }
    }

    /// Dimension reported in the paper's Table II.
    pub fn paper_n(self) -> usize {
        match self {
            Surrogate::Ecology2 => 999_999,
            Surrogate::Thermal2 => 1_228_045,
            Surrogate::Serena => 1_391_349,
        }
    }

    /// Nonzeros reported in the paper's Table II.
    pub fn paper_nnz(self) -> usize {
        match self {
            Surrogate::Ecology2 => 4_995_991,
            Surrogate::Thermal2 => 8_580_313,
            Surrogate::Serena => 64_131_971,
        }
    }

    /// Generates the surrogate at full (paper) scale.
    pub fn generate(self) -> CsrMatrix {
        self.generate_scaled(1.0)
            .expect("scale 1.0 is always valid") // pscg-lint: allow(panic-in-hot-path, scale 1.0 is accepted by generate_scaled for every profile)
    }

    /// Generates the surrogate with each grid extent scaled by
    /// `scale.cbrt()` (3-D) or `scale.sqrt()` (2-D), so `scale = 0.1` gives
    /// roughly a tenth of the unknowns. Used by tests and quick benchmark
    /// runs; `scale = 1.0` reproduces the table above.
    ///
    /// A scale outside `(0, 1]` (including NaN) is a typed error, not a
    /// panic — the scale often arrives from CLI flags or config files.
    pub fn generate_scaled(self, scale: f64) -> Result<CsrMatrix, SparseError> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(SparseError::InvalidArgument(format!(
                "surrogate scale must be in (0, 1], got {scale}"
            )));
        }
        Ok(match self {
            Surrogate::Ecology2 => {
                let f = scale.sqrt();
                let nx = ((999.0 * f).round() as usize).max(3);
                let ny = ((1001.0 * f).round() as usize).max(3);
                ecology2_like(nx, ny)
            }
            Surrogate::Thermal2 => {
                let f = scale.cbrt();
                let n = ((107.0 * f).round() as usize).max(3);
                thermal2_like(Grid3::cube(n), 0x7e41)
            }
            Surrogate::Serena => {
                let f = scale.cbrt();
                let nx = ((112.0 * f).round() as usize).max(5);
                let nz = ((111.0 * f).round() as usize).max(5);
                serena_like(Grid3::new(nx, nx, nz), 0x5e4e4a)
            }
        })
    }
}

/// ecology2 surrogate: anisotropic 2-D 5-point diffusion. The mild (4:1)
/// anisotropy slows CG convergence under Jacobi the way the real landscape
/// resistances do.
pub fn ecology2_like(nx: usize, ny: usize) -> CsrMatrix {
    stencil::poisson2d_5pt(nx, ny, 1.0, 0.25)
}

/// thermal2 surrogate: 3-D 7-point operator with log-uniform cellwise
/// conductivities spanning three orders of magnitude.
pub fn thermal2_like(grid: Grid3, seed: u64) -> CsrMatrix {
    let mut rng = SplitMix64::new(seed);
    let coeff: Vec<f64> = (0..grid.len())
        .map(|_| {
            let e = rng.uniform(-1.5, 1.5);
            10f64.powf(e)
        })
        .collect();
    stencil::poisson3d_7pt(grid, Some(&coeff))
}

/// Serena surrogate: wide (44-neighbour) stencil with a layered
/// high-contrast coefficient field — stiff layers alternating with soft ones
/// along z, plus pointwise jitter, mimicking a reservoir's rock strata.
pub fn serena_like(grid: Grid3, seed: u64) -> CsrMatrix {
    let mut rng = SplitMix64::new(seed);
    let mut coeff = vec![0.0f64; grid.len()];
    for z in 0..grid.nz {
        // Layers of ~7 cells; stiffness contrast 1e3 between layer types.
        let layer_stiff = if (z / 7) % 3 == 0 { 1e3 } else { 1.0 };
        for y in 0..grid.ny {
            for x in 0..grid.nx {
                let jitter = rng.uniform(0.5, 2.0);
                coeff[grid.idx(x, y, z)] = layer_stiff * jitter;
            }
        }
    }
    stencil::assemble(grid, &stencil::wide_stencil_3d(), Some(&coeff))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecology2_full_scale_counts_match_paper() {
        // Structure only — build at full scale is ~5M nnz, fast enough.
        let a = ecology2_like(999, 1001);
        assert_eq!(a.nrows(), Surrogate::Ecology2.paper_n());
        // The real ecology2 drops 4 entries relative to a pure 5-pt grid
        // operator; the surrogate is within 4 of the paper's 4 995 991.
        let diff = a.nnz().abs_diff(Surrogate::Ecology2.paper_nnz());
        assert!(
            diff <= 4,
            "nnz {} vs paper {}",
            a.nnz(),
            Surrogate::Ecology2.paper_nnz()
        );
    }

    #[test]
    fn scaled_surrogates_are_spd_certified() {
        for s in [Surrogate::Ecology2, Surrogate::Thermal2, Surrogate::Serena] {
            let a = s.generate_scaled(0.001).unwrap();
            assert!(a.is_symmetric(1e-11), "{} not symmetric", s.name());
            assert!(a.is_diagonally_dominant(), "{} not dominant", s.name());
        }
    }

    #[test]
    fn out_of_range_scale_is_a_typed_error_not_a_panic() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let e = Surrogate::Ecology2.generate_scaled(bad).unwrap_err();
            assert!(
                matches!(e, SparseError::InvalidArgument(_)),
                "scale {bad}: got {e:?}"
            );
        }
    }

    #[test]
    fn thermal2_is_seeded_deterministic() {
        let g = Grid3::cube(6);
        let a = thermal2_like(g, 42);
        let b = thermal2_like(g, 42);
        let c = thermal2_like(g, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn serena_nnz_per_row_near_45() {
        let a = serena_like(Grid3::new(14, 14, 14), 7);
        // Interior rows have 44 neighbours + diagonal.
        let per_row = a.avg_nnz_per_row();
        assert!(per_row > 30.0 && per_row <= 45.0, "avg nnz/row = {per_row}");
    }

    #[test]
    fn paper_metadata_is_consistent() {
        assert_eq!(Surrogate::Ecology2.name(), "ecology2");
        assert!(Surrogate::Serena.paper_nnz() > Surrogate::Thermal2.paper_nnz());
    }
}

//! Column-major blocks of vectors and the block linear-combination kernels.
//!
//! The s-step methods operate on `N × s` blocks (`Q`, `P`, `AQ`, the
//! matrix-of-matrices `AQm[j]`, …). [`MultiVector`] stores such a block
//! contiguously, one column after another, so each column is itself a
//! `&[f64]` usable by the scalar kernels.
//!
//! The block kernels (`X += Y·B`, `X = Y − Z·α`, Gram products `XᵀY`, the
//! fused recurrence sweeps) are row-chunked over the kernel engine
//! (`pscg_par`): every kernel walks fixed chunks of
//! [`pscg_par::knobs::gram_chunk_rows`] rows, computing all `s²` (resp.
//! `2s`) outputs per chunk while the chunk is cache-resident — one pass
//! over memory instead of the `O(s²)` column-pair re-reads of a naive
//! formulation. Updates write disjoint rows; reductions fold per-chunk
//! partials in chunk order. Both are bitwise independent of the thread
//! count, and a single-chunk problem reproduces the unchunked serial
//! result exactly.

use pscg_par::{chunk_count, chunk_range, knobs, DisjointMut, Pool};

use crate::dense::DenseMatrix;

/// A dense block of `ncols` vectors of length `len`, stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector {
    len: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl MultiVector {
    /// A zero block of `ncols` vectors of length `len`.
    pub fn zeros(len: usize, ncols: usize) -> Self {
        MultiVector {
            len,
            ncols,
            data: vec![0.0; len * ncols],
        }
    }

    /// Builds a block from column slices (all of equal length).
    pub fn from_columns(cols: &[&[f64]]) -> Self {
        assert!(!cols.is_empty(), "from_columns: need at least one column");
        let len = cols[0].len();
        let mut data = Vec::with_capacity(len * cols.len());
        for c in cols {
            assert_eq!(c.len(), len, "from_columns: ragged columns");
            data.extend_from_slice(c);
        }
        MultiVector {
            len,
            ncols: cols.len(),
            data,
        }
    }

    /// Vector length (number of rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block has zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.len..(j + 1) * self.len]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.len..(j + 1) * self.len]
    }

    /// Two distinct columns, one mutable — needed when a column is computed
    /// from another column of the same block (e.g. building monomial bases).
    pub fn col_pair_mut(&mut self, src: usize, dst: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(src, dst, "col_pair_mut: columns must differ");
        let n = self.len;
        if src < dst {
            let (a, b) = self.data.split_at_mut(dst * n);
            (&a[src * n..(src + 1) * n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(src * n);
            (&b[..n], &mut a[dst * n..(dst + 1) * n])
        }
    }

    /// Underlying storage (column-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying storage (column-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies block `other` into `self` (same shape).
    pub fn copy_from(&mut self, other: &MultiVector) {
        assert_eq!(self.len, other.len);
        assert_eq!(self.ncols, other.ncols);
        self.data.copy_from_slice(&other.data);
    }

    /// Block update `self += other · B` where `B` is `other.ncols × self.ncols`.
    ///
    /// This is the paper's recurrence linear combination
    /// `Q = Q + P[β¹, β², …, βˢ]` (Algorithm 4 line 10, Algorithm 5 line 17…).
    /// One pass per row chunk: each destination element is read and written
    /// once while all `k` sources accumulate in a register.
    pub fn add_mul(&mut self, other: &MultiVector, b: &DenseMatrix) {
        self.add_mul_with(&pscg_par::global(), other, b)
    }

    /// [`MultiVector::add_mul`] on an explicit pool.
    pub fn add_mul_with(&mut self, pool: &Pool, other: &MultiVector, b: &DenseMatrix) {
        assert_eq!(self.len, other.len, "add_mul: row mismatch");
        assert_eq!(b.nrows(), other.ncols, "add_mul: B rows != other cols");
        assert_eq!(b.ncols(), self.ncols, "add_mul: B cols != self cols");
        let (n, ncols) = (self.len, self.ncols);
        let other_cols = other.ncols;
        let dst = DisjointMut::new(&mut self.data);
        run_row_chunks(pool, n, &|clo, chi| {
            trace_read(other.data());
            for j in 0..ncols {
                // SAFETY: each chunk writes rows [clo, chi) of each column;
                // chunks are disjoint.
                let d = unsafe { dst.range(j * n + clo, j * n + chi) };
                // k ascends and zero coefficients are skipped exactly as in
                // the per-column formulation, so every element sees the same
                // accumulation chain (bitwise-equal results).
                for k in 0..other_cols {
                    let coef = b.get(k, j);
                    // pscg-lint: allow(float-eq, exact sparsity skip keeping accumulation chains bitwise-equal)
                    if coef == 0.0 {
                        continue;
                    }
                    crate::kernels::axpy_unrolled4(coef, &other.col(k)[clo..chi], d);
                }
            }
        });
    }

    /// `y += self · a` for a coefficient vector `a` of length `ncols`
    /// (the solution update `x_{i+1} = x_i + Qα`).
    pub fn gemv_acc(&self, a: &[f64], y: &mut [f64]) {
        self.gemv_acc_with(&pscg_par::global(), a, y)
    }

    /// [`MultiVector::gemv_acc`] on an explicit pool.
    pub fn gemv_acc_with(&self, pool: &Pool, a: &[f64], y: &mut [f64]) {
        assert_eq!(a.len(), self.ncols, "gemv_acc: coefficient length");
        assert_eq!(y.len(), self.len, "gemv_acc: output length");
        let n = self.len;
        let dst = DisjointMut::new(y);
        run_row_chunks(pool, n, &|clo, chi| {
            trace_read(self.data());
            // SAFETY: chunks are disjoint.
            let d = unsafe { dst.range(clo, chi) };
            for (k, &coef) in a.iter().enumerate() {
                // pscg-lint: allow(float-eq, exact sparsity skip keeping accumulation chains bitwise-equal)
                if coef == 0.0 {
                    continue;
                }
                crate::kernels::axpy_unrolled4(coef, &self.col(k)[clo..chi], d);
            }
        });
    }

    /// `y -= self · a` (the residual update `r_{i+1} = r_i − AQα`).
    pub fn gemv_sub(&self, a: &[f64], y: &mut [f64]) {
        self.gemv_sub_with(&pscg_par::global(), a, y)
    }

    /// [`MultiVector::gemv_sub`] on an explicit pool.
    pub fn gemv_sub_with(&self, pool: &Pool, a: &[f64], y: &mut [f64]) {
        assert_eq!(a.len(), self.ncols, "gemv_sub: coefficient length");
        assert_eq!(y.len(), self.len, "gemv_sub: output length");
        let n = self.len;
        let dst = DisjointMut::new(y);
        run_row_chunks(pool, n, &|clo, chi| {
            trace_read(self.data());
            // SAFETY: chunks are disjoint.
            let d = unsafe { dst.range(clo, chi) };
            for (k, &coef) in a.iter().enumerate() {
                // pscg-lint: allow(float-eq, exact sparsity skip keeping accumulation chains bitwise-equal)
                if coef == 0.0 {
                    continue;
                }
                crate::kernels::axmy_unrolled4(coef, &self.col(k)[clo..chi], d);
            }
        });
    }

    /// Fused recurrence sweep `self = src[:, off..off+ncols] + prev · B` —
    /// the s-step conjugation update (`Q = R + P[β¹…βˢ]`) as one pass over
    /// the rows instead of a column-copy pass followed by an `add_mul` pass.
    /// Bitwise identical to `copy` + [`MultiVector::add_mul`].
    pub fn combine_window(
        &mut self,
        src: &MultiVector,
        off: usize,
        prev: &MultiVector,
        b: &DenseMatrix,
    ) {
        self.combine_window_with(&pscg_par::global(), src, off, prev, b)
    }

    /// [`MultiVector::combine_window`] on an explicit pool.
    pub fn combine_window_with(
        &mut self,
        pool: &Pool,
        src: &MultiVector,
        off: usize,
        prev: &MultiVector,
        b: &DenseMatrix,
    ) {
        assert_eq!(self.len, src.len, "combine: src row mismatch");
        assert_eq!(self.len, prev.len, "combine: prev row mismatch");
        assert!(off + self.ncols <= src.ncols, "combine: src window");
        assert_eq!(b.nrows(), prev.ncols, "combine: B rows != prev cols");
        assert_eq!(b.ncols(), self.ncols, "combine: B cols != self cols");
        let (n, ncols) = (self.len, self.ncols);
        let prev_cols = prev.ncols;
        let dst = DisjointMut::new(&mut self.data);
        run_row_chunks(pool, n, &|clo, chi| {
            trace_read(src.data());
            trace_read(prev.data());
            for j in 0..ncols {
                // SAFETY: chunks are disjoint.
                let d = unsafe { dst.range(j * n + clo, j * n + chi) };
                d.copy_from_slice(&src.col(off + j)[clo..chi]);
                for k in 0..prev_cols {
                    let coef = b.get(k, j);
                    // pscg-lint: allow(float-eq, exact sparsity skip keeping accumulation chains bitwise-equal)
                    if coef == 0.0 {
                        continue;
                    }
                    crate::kernels::axpy_unrolled4(coef, &prev.col(k)[clo..chi], d);
                }
            }
        });
    }

    /// Fused basis shift `dst = src − self · a` — the PIPE-sCG/PIPE-PsCG
    /// power-list update (`rpow_next[j] = rpow[j] − rapow[j]·α`) as one pass.
    /// Bitwise identical to `copy` + [`MultiVector::gemv_sub`].
    pub fn gemv_sub_into(&self, a: &[f64], src: &[f64], dst: &mut [f64]) {
        self.gemv_sub_into_with(&pscg_par::global(), a, src, dst)
    }

    /// [`MultiVector::gemv_sub_into`] on an explicit pool.
    pub fn gemv_sub_into_with(&self, pool: &Pool, a: &[f64], src: &[f64], dst: &mut [f64]) {
        assert_eq!(a.len(), self.ncols, "gemv_sub_into: coefficient length");
        assert_eq!(src.len(), self.len, "gemv_sub_into: src length");
        assert_eq!(dst.len(), self.len, "gemv_sub_into: dst length");
        let n = self.len;
        let out = DisjointMut::new(dst);
        run_row_chunks(pool, n, &|clo, chi| {
            trace_read(self.data());
            trace_read(src);
            // SAFETY: chunks are disjoint.
            let d = unsafe { out.range(clo, chi) };
            d.copy_from_slice(&src[clo..chi]);
            for (k, &coef) in a.iter().enumerate() {
                // pscg-lint: allow(float-eq, exact sparsity skip keeping accumulation chains bitwise-equal)
                if coef == 0.0 {
                    continue;
                }
                crate::kernels::axmy_unrolled4(coef, &self.col(k)[clo..chi], d);
            }
        });
    }

    /// Gram product `selfᵀ · other` as a dense `ncols × other.ncols` matrix,
    /// computed over rows `[lo, hi)` only (the local window of a rank; pass
    /// `0..len` for the global product). All entries of a row chunk are
    /// formed while the chunk is cache-resident; per-chunk partial matrices
    /// fold in chunk order (deterministic at any thread count).
    pub fn gram_window(&self, other: &MultiVector, lo: usize, hi: usize) -> DenseMatrix {
        self.gram_window_with(&pscg_par::global(), other, lo, hi)
    }

    /// [`MultiVector::gram_window`] on an explicit pool.
    pub fn gram_window_with(
        &self,
        pool: &Pool,
        other: &MultiVector,
        lo: usize,
        hi: usize,
    ) -> DenseMatrix {
        assert_eq!(self.len, other.len, "gram: row mismatch");
        assert!(hi <= self.len && lo <= hi);
        gram_chunked(pool, self, 0..self.ncols, other, 0..other.ncols, lo, hi)
    }

    /// Gram product over all rows.
    pub fn gram(&self, other: &MultiVector) -> DenseMatrix {
        self.gram_window(other, 0, self.len)
    }

    /// [`MultiVector::gram`] on an explicit pool.
    pub fn gram_with(&self, pool: &Pool, other: &MultiVector) -> DenseMatrix {
        self.gram_window_with(pool, other, 0, self.len)
    }

    /// Gram product between column ranges: `self[:, xr]ᵀ · other[:, yr]`.
    /// The s-step methods use this to form moment matrices between shifted
    /// windows of one power list (e.g. `N_{jk} = (A^j r, A^{k+1} r)`).
    pub fn gram_range(
        &self,
        xr: std::ops::Range<usize>,
        other: &MultiVector,
        yr: std::ops::Range<usize>,
    ) -> DenseMatrix {
        self.gram_range_with(&pscg_par::global(), xr, other, yr)
    }

    /// [`MultiVector::gram_range`] on an explicit pool.
    pub fn gram_range_with(
        &self,
        pool: &Pool,
        xr: std::ops::Range<usize>,
        other: &MultiVector,
        yr: std::ops::Range<usize>,
    ) -> DenseMatrix {
        assert_eq!(self.len, other.len, "gram_range: row mismatch");
        assert!(xr.end <= self.ncols && yr.end <= other.ncols);
        gram_chunked(pool, self, xr, other, yr, 0, self.len)
    }

    /// `selfᵀ · v` over rows `[lo, hi)`, one dot per column — all columns
    /// per row chunk, partials folded in chunk order.
    pub fn dot_vec_window(&self, v: &[f64], lo: usize, hi: usize) -> Vec<f64> {
        self.dot_vec_window_with(&pscg_par::global(), v, lo, hi)
    }

    /// [`MultiVector::dot_vec_window`] on an explicit pool.
    pub fn dot_vec_window_with(&self, pool: &Pool, v: &[f64], lo: usize, hi: usize) -> Vec<f64> {
        assert_eq!(v.len(), self.len, "dot_vec: length mismatch");
        assert!(hi <= self.len && lo <= hi);
        let ncols = self.ncols;
        let chunk = knobs::gram_chunk_rows();
        let nchunks = chunk_count(hi - lo, chunk);
        if nchunks == 0 {
            return vec![0.0; ncols];
        }
        // Preallocated flat partials, one stripe per chunk: workers never
        // allocate (see `gram_chunked` on why that matters for tracing).
        let mut partials = vec![0.0f64; nchunks * ncols];
        {
            let slots = DisjointMut::new(&mut partials);
            pool.run(nchunks, &|c| {
                let (clo, chi) = chunk_range(hi - lo, chunk, c);
                let (clo, chi) = (lo + clo, lo + chi);
                trace_read(self.data());
                trace_read(v);
                // SAFETY: stripes are disjoint per chunk index.
                let out = unsafe { slots.range(c * ncols, (c + 1) * ncols) };
                for (oj, j) in out.iter_mut().zip(0..ncols) {
                    *oj = crate::kernels::dot(&self.col(j)[clo..chi], &v[clo..chi]);
                }
            });
        }
        fold_partial_stripes(&partials, nchunks, ncols)
    }

    /// `selfᵀ · v` over all rows.
    pub fn dot_vec(&self, v: &[f64]) -> Vec<f64> {
        self.dot_vec_window(v, 0, self.len)
    }
}

/// Runs `body(chunk_lo, chunk_hi)` over the fixed row chunks of `[0, n)`;
/// inline when a single chunk suffices or the pool is serial.
fn run_row_chunks(pool: &Pool, n: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    let chunk = knobs::gram_chunk_rows();
    let nchunks = chunk_count(n, chunk);
    pool.run(nchunks, &|c| {
        let (clo, chi) = chunk_range(n, chunk, c);
        body(clo, chi);
    });
}

/// Records a whole-buffer read for the race detector (no-op unless
/// [`pscg_par::sync_trace`] recording is on). Reads are deliberately
/// over-approximated to the full buffer: source operands are shared `&`
/// borrows, so the only conflicts a read can participate in are against
/// writes from *other* kernel invocations — and those are whole-buffer
/// ordered by the pool's publish/join protocol, not by row ranges.
#[inline]
fn trace_read(buf: &[f64]) {
    pscg_par::sync_trace::record_read(buf, 0, buf.len());
}

/// Chunk-blocked Gram product `x[:, xr]ᵀ · y[:, yr]` over rows `[lo, hi)`.
fn gram_chunked(
    pool: &Pool,
    x: &MultiVector,
    xr: std::ops::Range<usize>,
    y: &MultiVector,
    yr: std::ops::Range<usize>,
    lo: usize,
    hi: usize,
) -> DenseMatrix {
    let chunk = knobs::gram_chunk_rows();
    let nchunks = chunk_count(hi - lo, chunk);
    if nchunks == 0 {
        return DenseMatrix::zeros(xr.len(), yr.len());
    }
    // Every per-chunk partial is preallocated on the calling thread: worker
    // threads must never touch the allocator, or the heap layout (and with
    // it SimCtx's address-based BufId interning) would depend on the pool
    // width and traced runs would stop being reproducible across it.
    let mut partials: Vec<DenseMatrix> = (0..nchunks)
        .map(|_| DenseMatrix::zeros(xr.len(), yr.len()))
        .collect();
    {
        let slots = DisjointMut::new(&mut partials);
        pool.run(nchunks, &|c| {
            let (clo, chi) = chunk_range(hi - lo, chunk, c);
            let (clo, chi) = (lo + clo, lo + chi);
            trace_read(x.data());
            trace_read(y.data());
            // SAFETY: one chunk index owns exactly one slot.
            let g = &mut unsafe { slots.range(c, c + 1) }[0];
            for (gi, i) in xr.clone().enumerate() {
                let xi = &x.col(i)[clo..chi];
                for (gj, j) in yr.clone().enumerate() {
                    g.set(gi, gj, crate::kernels::dot(xi, &y.col(j)[clo..chi]));
                }
            }
        });
    }
    // Ordered combine: start from chunk 0 (a lone chunk reproduces the
    // unchunked dot bitwise) and add the rest in chunk order.
    let mut it = partials.into_iter();
    let mut g = it.next().unwrap(); // pscg-lint: allow(panic-in-hot-path, chunking always yields at least one partial)
    for p in it {
        for (gi, pi) in g.data_mut().iter_mut().zip(p.data()) {
            *gi += pi;
        }
    }
    g
}

/// Ordered combine of per-chunk partial stripes: the result starts as
/// chunk 0's stripe (a lone chunk reproduces the unchunked dots bitwise)
/// and the remaining stripes are added in chunk order.
fn fold_partial_stripes(partials: &[f64], nchunks: usize, ncols: usize) -> Vec<f64> {
    let mut out = partials[..ncols].to_vec();
    for c in 1..nchunks {
        for (oi, pi) in out.iter_mut().zip(&partials[c * ncols..(c + 1) * ncols]) {
            *oi += pi;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(cols: &[&[f64]]) -> MultiVector {
        MultiVector::from_columns(cols)
    }

    #[test]
    fn construction_and_access() {
        let m = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_mul_matches_dense_algebra() {
        // X (2x2) += Y (2x2) * B (2x2)
        let mut x = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        x.add_mul(&y, &b);
        // col0 += 1*y0 + 0.5*y1 ; col1 += -1*y0 + 2*y1
        assert_eq!(x.col(0), &[1.0 + 1.0 + 1.5, 0.0 + 2.0 + 2.0]);
        assert_eq!(x.col(1), &[-1.0 + 6.0, 1.0 - 2.0 + 8.0]);
    }

    #[test]
    fn gemv_acc_and_sub() {
        let q = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut xv = vec![10.0, 20.0];
        q.gemv_acc(&[2.0, 3.0], &mut xv);
        assert_eq!(xv, vec![12.0, 23.0]);
        q.gemv_sub(&[2.0, 3.0], &mut xv);
        assert_eq!(xv, vec![10.0, 20.0]);
    }

    #[test]
    fn gram_window_partitions_sum_to_total() {
        let x = mv(&[&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.5, 0.5, 0.5]]);
        let y = mv(&[&[1.0, 1.0, 1.0, 1.0]]);
        let g_total = x.gram(&y);
        let g_lo = x.gram_window(&y, 0, 2);
        let g_hi = x.gram_window(&y, 2, 4);
        for i in 0..2 {
            assert!((g_total.get(i, 0) - (g_lo.get(i, 0) + g_hi.get(i, 0))).abs() < 1e-14);
        }
    }

    #[test]
    fn col_pair_mut_both_orders() {
        let mut m = mv(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        {
            let (src, dst) = m.col_pair_mut(0, 2);
            dst.copy_from_slice(src);
        }
        assert_eq!(m.col(2), &[1.0, 1.0]);
        {
            let (src, dst) = m.col_pair_mut(2, 1);
            for (d, s) in dst.iter_mut().zip(src) {
                *d = 2.0 * s;
            }
        }
        assert_eq!(m.col(1), &[2.0, 2.0]);
    }

    #[test]
    fn gram_range_matches_full_gram() {
        let x = mv(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let full = x.gram(&x);
        let sub = x.gram_range(0..2, &x, 1..3);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(sub.get(i, j), full.get(i, j + 1));
            }
        }
    }

    #[test]
    fn dot_vec_matches_per_column() {
        let m = mv(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let v = [2.0, 1.0];
        assert_eq!(m.dot_vec(&v), vec![4.0, 5.0]);
    }
}

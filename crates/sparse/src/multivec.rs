//! Column-major blocks of vectors and the block linear-combination kernels.
//!
//! The s-step methods operate on `N × s` blocks (`Q`, `P`, `AQ`, the
//! matrix-of-matrices `AQm[j]`, …). [`MultiVector`] stores such a block
//! contiguously, one column after another, so each column is itself a
//! `&[f64]` usable by the scalar kernels, while the block updates
//! (`X += Y·B`, `X = Y − Z·α`, Gram products `XᵀY`) stream whole columns.

use crate::dense::DenseMatrix;

/// A dense block of `ncols` vectors of length `len`, stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector {
    len: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl MultiVector {
    /// A zero block of `ncols` vectors of length `len`.
    pub fn zeros(len: usize, ncols: usize) -> Self {
        MultiVector {
            len,
            ncols,
            data: vec![0.0; len * ncols],
        }
    }

    /// Builds a block from column slices (all of equal length).
    pub fn from_columns(cols: &[&[f64]]) -> Self {
        assert!(!cols.is_empty(), "from_columns: need at least one column");
        let len = cols[0].len();
        let mut data = Vec::with_capacity(len * cols.len());
        for c in cols {
            assert_eq!(c.len(), len, "from_columns: ragged columns");
            data.extend_from_slice(c);
        }
        MultiVector {
            len,
            ncols: cols.len(),
            data,
        }
    }

    /// Vector length (number of rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block has zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.len..(j + 1) * self.len]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.len..(j + 1) * self.len]
    }

    /// Two distinct columns, one mutable — needed when a column is computed
    /// from another column of the same block (e.g. building monomial bases).
    pub fn col_pair_mut(&mut self, src: usize, dst: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(src, dst, "col_pair_mut: columns must differ");
        let n = self.len;
        if src < dst {
            let (a, b) = self.data.split_at_mut(dst * n);
            (&a[src * n..(src + 1) * n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(src * n);
            (&b[..n], &mut a[dst * n..(dst + 1) * n])
        }
    }

    /// Underlying storage (column-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying storage (column-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies block `other` into `self` (same shape).
    pub fn copy_from(&mut self, other: &MultiVector) {
        assert_eq!(self.len, other.len);
        assert_eq!(self.ncols, other.ncols);
        self.data.copy_from_slice(&other.data);
    }

    /// Block update `self += other · B` where `B` is `other.ncols × self.ncols`.
    ///
    /// This is the paper's recurrence linear combination
    /// `Q = Q + P[β¹, β², …, βˢ]` (Algorithm 4 line 10, Algorithm 5 line 17…).
    pub fn add_mul(&mut self, other: &MultiVector, b: &DenseMatrix) {
        assert_eq!(self.len, other.len, "add_mul: row mismatch");
        assert_eq!(b.nrows(), other.ncols, "add_mul: B rows != other cols");
        assert_eq!(b.ncols(), self.ncols, "add_mul: B cols != self cols");
        let n = self.len;
        for j in 0..self.ncols {
            let dst = &mut self.data[j * n..(j + 1) * n];
            for k in 0..other.ncols {
                let coef = b.get(k, j);
                if coef == 0.0 {
                    continue;
                }
                let src = other.col(k);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += coef * s;
                }
            }
        }
    }

    /// `y += self · a` for a coefficient vector `a` of length `ncols`
    /// (the solution update `x_{i+1} = x_i + Qα`).
    pub fn gemv_acc(&self, a: &[f64], y: &mut [f64]) {
        assert_eq!(a.len(), self.ncols, "gemv_acc: coefficient length");
        assert_eq!(y.len(), self.len, "gemv_acc: output length");
        for (k, &coef) in a.iter().enumerate() {
            if coef == 0.0 {
                continue;
            }
            for (yi, s) in y.iter_mut().zip(self.col(k)) {
                *yi += coef * s;
            }
        }
    }

    /// `y -= self · a` (the residual update `r_{i+1} = r_i − AQα`).
    pub fn gemv_sub(&self, a: &[f64], y: &mut [f64]) {
        assert_eq!(a.len(), self.ncols, "gemv_sub: coefficient length");
        assert_eq!(y.len(), self.len, "gemv_sub: output length");
        for (k, &coef) in a.iter().enumerate() {
            if coef == 0.0 {
                continue;
            }
            for (yi, s) in y.iter_mut().zip(self.col(k)) {
                *yi -= coef * s;
            }
        }
    }

    /// Gram product `selfᵀ · other` as a dense `ncols × other.ncols` matrix,
    /// computed over rows `[lo, hi)` only (the local window of a rank; pass
    /// `0..len` for the global product).
    pub fn gram_window(&self, other: &MultiVector, lo: usize, hi: usize) -> DenseMatrix {
        assert_eq!(self.len, other.len, "gram: row mismatch");
        assert!(hi <= self.len && lo <= hi);
        let mut g = DenseMatrix::zeros(self.ncols, other.ncols);
        for i in 0..self.ncols {
            let xi = &self.col(i)[lo..hi];
            for j in 0..other.ncols {
                let yj = &other.col(j)[lo..hi];
                g.set(i, j, crate::kernels::dot(xi, yj));
            }
        }
        g
    }

    /// Gram product over all rows.
    pub fn gram(&self, other: &MultiVector) -> DenseMatrix {
        self.gram_window(other, 0, self.len)
    }

    /// Gram product between column ranges: `self[:, xr]ᵀ · other[:, yr]`.
    /// The s-step methods use this to form moment matrices between shifted
    /// windows of one power list (e.g. `N_{jk} = (A^j r, A^{k+1} r)`).
    pub fn gram_range(
        &self,
        xr: std::ops::Range<usize>,
        other: &MultiVector,
        yr: std::ops::Range<usize>,
    ) -> DenseMatrix {
        assert_eq!(self.len, other.len, "gram_range: row mismatch");
        assert!(xr.end <= self.ncols && yr.end <= other.ncols);
        let mut g = DenseMatrix::zeros(xr.len(), yr.len());
        for (gi, i) in xr.clone().enumerate() {
            let xi = self.col(i);
            for (gj, j) in yr.clone().enumerate() {
                g.set(gi, gj, crate::kernels::dot(xi, other.col(j)));
            }
        }
        g
    }

    /// `selfᵀ · v` over rows `[lo, hi)`, one dot per column.
    pub fn dot_vec_window(&self, v: &[f64], lo: usize, hi: usize) -> Vec<f64> {
        assert_eq!(v.len(), self.len, "dot_vec: length mismatch");
        (0..self.ncols)
            .map(|j| crate::kernels::dot(&self.col(j)[lo..hi], &v[lo..hi]))
            .collect()
    }

    /// `selfᵀ · v` over all rows.
    pub fn dot_vec(&self, v: &[f64]) -> Vec<f64> {
        self.dot_vec_window(v, 0, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(cols: &[&[f64]]) -> MultiVector {
        MultiVector::from_columns(cols)
    }

    #[test]
    fn construction_and_access() {
        let m = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_mul_matches_dense_algebra() {
        // X (2x2) += Y (2x2) * B (2x2)
        let mut x = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        x.add_mul(&y, &b);
        // col0 += 1*y0 + 0.5*y1 ; col1 += -1*y0 + 2*y1
        assert_eq!(x.col(0), &[1.0 + 1.0 + 1.5, 0.0 + 2.0 + 2.0]);
        assert_eq!(x.col(1), &[-1.0 + 6.0, 1.0 - 2.0 + 8.0]);
    }

    #[test]
    fn gemv_acc_and_sub() {
        let q = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut xv = vec![10.0, 20.0];
        q.gemv_acc(&[2.0, 3.0], &mut xv);
        assert_eq!(xv, vec![12.0, 23.0]);
        q.gemv_sub(&[2.0, 3.0], &mut xv);
        assert_eq!(xv, vec![10.0, 20.0]);
    }

    #[test]
    fn gram_window_partitions_sum_to_total() {
        let x = mv(&[&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.5, 0.5, 0.5]]);
        let y = mv(&[&[1.0, 1.0, 1.0, 1.0]]);
        let g_total = x.gram(&y);
        let g_lo = x.gram_window(&y, 0, 2);
        let g_hi = x.gram_window(&y, 2, 4);
        for i in 0..2 {
            assert!((g_total.get(i, 0) - (g_lo.get(i, 0) + g_hi.get(i, 0))).abs() < 1e-14);
        }
    }

    #[test]
    fn col_pair_mut_both_orders() {
        let mut m = mv(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        {
            let (src, dst) = m.col_pair_mut(0, 2);
            dst.copy_from_slice(src);
        }
        assert_eq!(m.col(2), &[1.0, 1.0]);
        {
            let (src, dst) = m.col_pair_mut(2, 1);
            for (d, s) in dst.iter_mut().zip(src) {
                *d = 2.0 * s;
            }
        }
        assert_eq!(m.col(1), &[2.0, 2.0]);
    }

    #[test]
    fn gram_range_matches_full_gram() {
        let x = mv(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let full = x.gram(&x);
        let sub = x.gram_range(0..2, &x, 1..3);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(sub.get(i, j), full.get(i, j + 1));
            }
        }
    }

    #[test]
    fn dot_vec_matches_per_column() {
        let m = mv(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let v = [2.0, 1.0];
        assert_eq!(m.dot_vec(&v), vec![4.0, 5.0]);
    }
}

//! Dense vector kernels: dot products, AXPY-family updates, norms.
//!
//! These are the "VMA" (vector-multiply-add) and dot-product kernels of the
//! paper's cost analysis (Table I). They are deliberately free functions over
//! slices so that both the global (serial/simulated) engines and the per-rank
//! SPMD engine can reuse them on whatever window of data they own.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // Four partial accumulators break the add dependency chain, which lets
    // the compiler keep the loop pipelined without changing the rounding
    // behaviour from run to run (the split is fixed, not data-dependent).
    let chunks = x.len() / 4 * 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < chunks {
        a0 += x[i] * y[i];
        a1 += x[i + 1] * y[i + 1];
        a2 += x[i + 2] * y[i + 2];
        a3 += x[i + 3] * y[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < x.len() {
        tail += x[i] * y[i];
        i += 1;
    }
    (a0 + a1) + (a2 + a3) + tail
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `y += a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y += a·x`, manually unrolled 4× with a scalar tail — the streaming
/// update body of the fused s-step sweeps. Elements are independent (no
/// cross-element accumulation), so unrolling cannot change rounding: this
/// is bitwise identical to [`axpy`] and exists purely to keep four
/// load/FMA/store pipelines in flight per iteration.
#[inline]
pub fn axpy_unrolled4(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let blocks = n / 4 * 4;
    let mut i = 0;
    while i < blocks {
        y[i] += a * x[i];
        y[i + 1] += a * x[i + 1];
        y[i + 2] += a * x[i + 2];
        y[i + 3] += a * x[i + 3];
        i += 4;
    }
    while i < n {
        y[i] += a * x[i];
        i += 1;
    }
}

/// `y -= a·x`, manually unrolled 4× with a scalar tail (see
/// [`axpy_unrolled4`]; bitwise identical to the plain loop).
#[inline]
pub fn axmy_unrolled4(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let blocks = n / 4 * 4;
    let mut i = 0;
    while i < blocks {
        y[i] -= a * x[i];
        y[i + 1] -= a * x[i + 1];
        y[i + 2] -= a * x[i + 2];
        y[i + 3] -= a * x[i + 3];
        i += 4;
    }
    while i < n {
        y[i] -= a * x[i];
        i += 1;
    }
}

/// `y = x + a·y` (the CG direction update `p = u + β p`).
#[inline]
pub fn aypx(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + a * *yi;
    }
}

/// `z = x + a·y` into a separate output.
#[inline]
pub fn waxpy(z: &mut [f64], a: f64, y: &[f64], x: &[f64]) {
    debug_assert_eq!(x.len(), z.len());
    debug_assert_eq!(y.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi + a * yi;
    }
}

/// `x *= a`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// `y = x`.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// `x = 0`.
#[inline]
pub fn zero(x: &mut [f64]) {
    for xi in x {
        *xi = 0.0;
    }
}

/// Pointwise product `z = d ⊙ x` (diagonal/Jacobi application).
#[inline]
pub fn hadamard(d: &[f64], x: &[f64], z: &mut [f64]) {
    debug_assert_eq!(d.len(), x.len());
    debug_assert_eq!(d.len(), z.len());
    for ((zi, di), xi) in z.iter_mut().zip(d).zip(x) {
        *zi = di * xi;
    }
}

/// Pointwise product `z = d ⊙ x` with `d` stored in fp32 and the multiply
/// performed in fp32 — the demoted-precision Jacobi apply. Each `x[i]` is
/// rounded to f32 on entry and the product widened back on exit, so the
/// kernel moves 4 bytes of diagonal per row instead of 8. Deterministic:
/// pure elementwise rounding, no accumulation order to vary.
#[inline]
pub fn hadamard_f32(d: &[f32], x: &[f64], z: &mut [f64]) {
    debug_assert_eq!(d.len(), x.len());
    debug_assert_eq!(d.len(), z.len());
    for ((zi, di), xi) in z.iter_mut().zip(d).zip(x) {
        *zi = f64::from(di * (*xi as f32));
    }
}

/// Maximum absolute difference between two vectors.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..103).map(|i| 1.0 - i as f64 * 0.25).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_is_deterministic() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..1000).map(|i| (i as f64).cos()).collect();
        assert_eq!(dot(&x, &y), dot(&x, &y));
    }

    #[test]
    fn axpy_family() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        aypx(0.5, &x, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
        let mut z = [0.0; 3];
        waxpy(&mut z, -1.0, &y, &x);
        assert_eq!(z, [-6.0, -12.0, -18.0]);
    }

    #[test]
    fn unrolled_axpy_is_bitwise_plain() {
        let x: Vec<f64> = (0..103).map(|i| (i as f64 * 0.83).sin()).collect();
        let mut y_plain: Vec<f64> = (0..103).map(|i| (i as f64 * 0.19).cos()).collect();
        let mut y_unrolled = y_plain.clone();
        axpy(0.731, &x, &mut y_plain);
        axpy_unrolled4(0.731, &x, &mut y_unrolled);
        assert_eq!(y_plain, y_unrolled);
        let mut z_plain = y_plain.clone();
        let mut z_unrolled = y_plain.clone();
        for (zi, xi) in z_plain.iter_mut().zip(&x) {
            *zi -= 1.37 * xi;
        }
        axmy_unrolled4(1.37, &x, &mut z_unrolled);
        assert_eq!(z_plain, z_unrolled);
    }

    #[test]
    fn norms_and_scale() {
        let mut x = [3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        scale(2.0, &mut x);
        assert_eq!(x, [6.0, 8.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn hadamard_applies_diagonal() {
        let d = [2.0, 0.5];
        let x = [4.0, 4.0];
        let mut z = [0.0; 2];
        hadamard(&d, &x, &mut z);
        assert_eq!(z, [8.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        assert_eq!(max_abs_diff(&[1.0, 5.0, 3.0], &[1.0, 2.0, 3.5]), 3.0);
    }
}

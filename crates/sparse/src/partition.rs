//! Row-block partitioning and communication-volume analysis.
//!
//! The distributed-memory model needs to know, for every rank count `P`, how
//! much point-to-point traffic the SpMV generates (the paper §III: "The SPMV
//! often only requires communication with the neighbouring nodes"). Matrices
//! are distributed by contiguous row blocks — the PETSc `MatAIJ` default the
//! paper's implementation uses — and we provide:
//!
//! * [`RowBlockPartition`] — balanced contiguous row ownership;
//! * [`halo_stats`] — streaming per-rank ghost/neighbour **counts** (cheap
//!   enough to run on the 10⁸-nnz paper operator for many values of `P`);
//! * [`halo_plan`] — exact ghost **index lists** per rank pair, used by the
//!   thread-backed SPMD engine to actually exchange halos.

use crate::csr::CsrMatrix;

/// A balanced contiguous row-block partition of `n` rows over `p` ranks.
///
/// The first `n % p` ranks own one extra row, matching the PETSc layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBlockPartition {
    offsets: Vec<usize>,
}

impl RowBlockPartition {
    /// Creates the balanced partition of `n` rows over `p > 0` ranks.
    pub fn balanced(n: usize, p: usize) -> Self {
        assert!(p > 0, "partition needs at least one rank");
        let base = n / p;
        let extra = n % p;
        let mut offsets = Vec::with_capacity(p + 1);
        let mut acc = 0;
        offsets.push(0);
        for r in 0..p {
            acc += base + usize::from(r < extra);
            offsets.push(acc);
        }
        RowBlockPartition { offsets }
    }

    /// Number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        *self.offsets.last().unwrap() // pscg-lint: allow(panic-in-hot-path, offsets always holds at least the leading 0 pushed at construction)
    }

    /// Row range `[lo, hi)` owned by `rank`.
    #[inline]
    pub fn range(&self, rank: usize) -> (usize, usize) {
        (self.offsets[rank], self.offsets[rank + 1])
    }

    /// Number of rows owned by `rank`.
    #[inline]
    pub fn local_len(&self, rank: usize) -> usize {
        self.offsets[rank + 1] - self.offsets[rank]
    }

    /// Largest local row count over all ranks (the strong-scaling critical
    /// path is set by the slowest rank).
    pub fn max_local_len(&self) -> usize {
        (0..self.nranks())
            .map(|r| self.local_len(r))
            .max()
            .unwrap_or(0)
    }

    /// Owner of global row `row`.
    #[inline]
    pub fn owner(&self, row: usize) -> usize {
        debug_assert!(row < self.nrows());
        match self.offsets.binary_search(&row) {
            Ok(r) if r < self.nranks() => r,
            Ok(r) => r - 1,
            Err(r) => r - 1,
        }
    }

    /// The offsets array (length `nranks + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Per-rank halo summary used by the machine model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankHalo {
    /// Distinct off-rank columns this rank must receive.
    pub ghost_cols: usize,
    /// Distinct ranks it receives from.
    pub recv_neighbors: usize,
    /// Values it must send to other ranks (sum over destinations of distinct
    /// requested indices).
    pub send_vals: usize,
    /// Distinct ranks it sends to.
    pub send_neighbors: usize,
}

/// Aggregate halo statistics for a `(matrix, partition)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloStats {
    /// Per-rank summaries.
    pub ranks: Vec<RankHalo>,
}

impl HaloStats {
    /// Maximum values any rank receives.
    pub fn max_recv(&self) -> usize {
        self.ranks.iter().map(|r| r.ghost_cols).max().unwrap_or(0)
    }

    /// Maximum neighbour count (recv side) over ranks.
    pub fn max_neighbors(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.recv_neighbors)
            .max()
            .unwrap_or(0)
    }

    /// Maximum of (recv + send) volume over ranks, in values.
    pub fn max_traffic(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.ghost_cols + r.send_vals)
            .max()
            .unwrap_or(0)
    }
}

/// Streaming halo statistics: one pass over the matrix per call, storing only
/// per-rank counters (no index lists), so it is safe to evaluate at paper
/// scale for every rank count in a scaling sweep.
pub fn halo_stats(a: &CsrMatrix, part: &RowBlockPartition) -> HaloStats {
    assert_eq!(
        a.nrows(),
        part.nrows(),
        "halo_stats: partition/matrix mismatch"
    );
    let p = part.nranks();
    let mut ranks = vec![RankHalo::default(); p];
    // ghost columns of rank r, collected then deduplicated per rank
    let mut ghosts: Vec<usize> = Vec::new();
    for r in 0..p {
        let (lo, hi) = part.range(r);
        ghosts.clear();
        for row in lo..hi {
            for &c in a.row_cols(row) {
                if c < lo || c >= hi {
                    ghosts.push(c);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();
        ranks[r].ghost_cols = ghosts.len();
        // Count distinct source ranks and attribute send volume to owners.
        let mut prev_owner = usize::MAX;
        for &c in ghosts.iter() {
            let o = part.owner(c);
            if o != prev_owner {
                ranks[r].recv_neighbors += 1;
                prev_owner = o;
            }
        }
        // The owner must send each requested value once per requester.
        let mut i = 0;
        while i < ghosts.len() {
            let o = part.owner(ghosts[i]);
            let mut j = i;
            while j < ghosts.len() && part.owner(ghosts[j]) == o {
                j += 1;
            }
            ranks[o].send_vals += j - i;
            ranks[o].send_neighbors += 1;
            i = j;
        }
    }
    HaloStats { ranks }
}

/// Exact halo exchange plan for one rank: which global indices to receive
/// from whom, and which of our rows to send to whom.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankPlan {
    /// `(source rank, global column indices we need from it)`, sorted by rank.
    pub recv: Vec<(usize, Vec<usize>)>,
    /// `(destination rank, global row indices it needs from us)`, sorted.
    pub send: Vec<(usize, Vec<usize>)>,
}

/// Exact halo plan for all ranks. Memory scales with total ghost indices, so
/// this is intended for the rank counts the thread engine actually runs
/// (tests use ≤ 64 ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct HaloPlan {
    /// One plan per rank.
    pub ranks: Vec<RankPlan>,
}

/// Builds the exact halo plan (see [`HaloPlan`]).
pub fn halo_plan(a: &CsrMatrix, part: &RowBlockPartition) -> HaloPlan {
    assert_eq!(
        a.nrows(),
        part.nrows(),
        "halo_plan: partition/matrix mismatch"
    );
    let p = part.nranks();
    let mut plans: Vec<RankPlan> = vec![RankPlan::default(); p];
    for r in 0..p {
        let (lo, hi) = part.range(r);
        let mut ghosts: Vec<usize> = Vec::new();
        for row in lo..hi {
            for &c in a.row_cols(row) {
                if c < lo || c >= hi {
                    ghosts.push(c);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();
        let mut i = 0;
        while i < ghosts.len() {
            let o = part.owner(ghosts[i]);
            let mut j = i;
            while j < ghosts.len() && part.owner(ghosts[j]) == o {
                j += 1;
            }
            let idx: Vec<usize> = ghosts[i..j].to_vec();
            plans[o].send.push((r, idx.clone()));
            plans[r].recv.push((o, idx));
            i = j;
        }
    }
    for plan in &mut plans {
        plan.recv.sort_by_key(|(r, _)| *r);
        plan.send.sort_by_key(|(r, _)| *r);
    }
    HaloPlan { ranks: plans }
}

/// Analytic halo volume for a 3-D box-stencil problem under row-block
/// partitioning: a rank owning a slab of `rows` grid rows with stencil
/// radius `rad` on an `nx × ny` plane receives up to `rad` planes from each
/// side. This closed form lets the machine model cost stencil problems
/// without scanning the matrix.
pub fn slab_halo_volume(
    nx: usize,
    ny: usize,
    local_planes: usize,
    rad: usize,
    interior: bool,
) -> usize {
    let per_side = nx * ny * rad.min(local_planes.max(1));
    if interior {
        2 * per_side
    } else {
        per_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{poisson3d_7pt, Grid3};

    #[test]
    fn balanced_partition_covers_all_rows() {
        let p = RowBlockPartition::balanced(10, 3);
        assert_eq!(p.offsets(), &[0, 4, 7, 10]);
        assert_eq!(p.local_len(0), 4);
        assert_eq!(p.max_local_len(), 4);
        assert_eq!(p.nranks(), 3);
        assert_eq!(p.nrows(), 10);
    }

    #[test]
    fn owner_is_consistent_with_range() {
        let p = RowBlockPartition::balanced(100, 7);
        for row in 0..100 {
            let o = p.owner(row);
            let (lo, hi) = p.range(o);
            assert!(
                row >= lo && row < hi,
                "row {row} owner {o} range {lo}..{hi}"
            );
        }
    }

    #[test]
    fn halo_stats_for_7pt_slab() {
        // 4x4x8 grid over 2 ranks: each rank owns 64 rows = 4 z-planes;
        // ghost = one 4x4 plane = 16 columns from the single neighbour.
        let g = Grid3::new(4, 4, 8);
        let a = poisson3d_7pt(g, None);
        let p = RowBlockPartition::balanced(g.len(), 2);
        let s = halo_stats(&a, &p);
        assert_eq!(s.ranks[0].ghost_cols, 16);
        assert_eq!(s.ranks[0].recv_neighbors, 1);
        assert_eq!(s.ranks[1].ghost_cols, 16);
        assert_eq!(s.ranks[0].send_vals, 16);
        assert_eq!(s.max_recv(), 16);
        assert_eq!(s.max_neighbors(), 1);
        assert_eq!(s.max_traffic(), 32);
    }

    #[test]
    fn halo_plan_matches_stats_and_is_symmetric() {
        let g = Grid3::new(3, 3, 9);
        let a = poisson3d_7pt(g, None);
        let p = RowBlockPartition::balanced(g.len(), 3);
        let stats = halo_stats(&a, &p);
        let plan = halo_plan(&a, &p);
        for r in 0..3 {
            let recv_total: usize = plan.ranks[r].recv.iter().map(|(_, v)| v.len()).sum();
            assert_eq!(recv_total, stats.ranks[r].ghost_cols);
            // Every recv list appears as the matching send list on the peer.
            for (src, idx) in &plan.ranks[r].recv {
                let peer = &plan.ranks[*src];
                let found = peer.send.iter().any(|(dst, sidx)| dst == &r && sidx == idx);
                assert!(found, "send/recv asymmetry between {r} and {src}");
            }
        }
    }

    #[test]
    fn single_rank_has_no_halo() {
        let g = Grid3::cube(4);
        let a = poisson3d_7pt(g, None);
        let p = RowBlockPartition::balanced(g.len(), 1);
        let s = halo_stats(&a, &p);
        assert_eq!(s.ranks[0], RankHalo::default());
    }

    #[test]
    fn slab_halo_closed_form() {
        assert_eq!(slab_halo_volume(10, 10, 5, 2, true), 400);
        assert_eq!(slab_halo_volume(10, 10, 5, 2, false), 200);
        // Thin slab: cannot receive more planes than it has.
        assert_eq!(slab_halo_volume(10, 10, 1, 2, true), 200);
    }
}

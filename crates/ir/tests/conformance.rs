//! IR↔trace conformance on real solves: every method's recorded schedule
//! must replay op-for-op against its declarative IR, at one and at four
//! threads, including the hybrid driver's phase-2 handoff.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_ir::{conform, method_ir, verify_static};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, OpTrace, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::CsrMatrix;

const ALL: [MethodKind; 11] = [
    MethodKind::Pcg,
    MethodKind::Pipecg,
    MethodKind::Pipecg3,
    MethodKind::PipecgOati,
    MethodKind::Scg,
    MethodKind::ScgSspmv,
    MethodKind::Pscg,
    MethodKind::PipeScg,
    MethodKind::PipePscg,
    MethodKind::Hybrid,
    MethodKind::Cg3,
];

fn problem() -> (CsrMatrix, Vec<f64>, MatrixProfile) {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    (a, b, prof)
}

fn solve_trace(
    a: &CsrMatrix,
    b: &[f64],
    prof: &MatrixProfile,
    kind: MethodKind,
    opts: &SolveOptions,
) -> OpTrace {
    let mut ctx = SimCtx::traced(a, Box::new(Jacobi::new(a)), prof.clone());
    kind.solve(&mut ctx, b, None, opts);
    ctx.take_trace().unwrap()
}

/// The acceptance gate: all eleven methods, two block sizes, one and four
/// threads. Thread counts are swept inside one test because the thread pool
/// is process-global.
#[test]
fn all_methods_conform_at_one_and_four_threads() {
    let (a, b, prof) = problem();
    let before = pscg_par::global_threads();
    for threads in [1, 4] {
        pscg_par::set_global_threads(threads);
        for s in [3, 4] {
            for kind in ALL {
                let opts = SolveOptions::with_rtol(1e-6).with_s(s);
                let trace = solve_trace(&a, &b, &prof, kind, &opts);
                let ir = method_ir(kind, s);
                if let Err(d) = conform(&ir, &trace) {
                    panic!("{} (s={s}, {threads} threads): {d}", kind.name());
                }
            }
        }
    }
    pscg_par::set_global_threads(before);
}

/// At an unreachable tolerance the hybrid driver stagnates in phase 1 and
/// hands the iterate to PIPECG-OATI; the recorded trace must follow the
/// phase-1 body up to a convergence check and then conform to the phase-2
/// IR — including OATI's periodic replacement passes.
#[test]
fn hybrid_handoff_trace_conforms() {
    let (a, b, prof) = problem();
    let opts = SolveOptions {
        rtol: 1e-30,
        atol: 0.0,
        max_iters: 400,
        s: 3,
        ..Default::default()
    };
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof.clone());
    let res = MethodKind::Hybrid.solve(&mut ctx, &b, None, &opts);
    let trace = ctx.take_trace().unwrap();
    // The handoff must actually have happened for this test to mean
    // anything: phase 2 re-runs the reference norm, so the trace carries
    // more than one blocking allreduce of 3.
    let refnorms = trace
        .ops
        .iter()
        .filter(|op| matches!(op, pscg_sim::Op::ArBlocking { doubles: 3, .. }))
        .count();
    assert!(
        refnorms >= 2,
        "phase 2 never started (stop: {:?})",
        res.stop
    );
    let ir = method_ir(MethodKind::Hybrid, 3);
    if let Err(d) = conform(&ir, &trace) {
        panic!("hybrid handoff: {d}");
    }
}

/// OATI's replacement cadence shows up in real traces: run long enough to
/// cross `replace_every` and the replacement-pass body must be taken.
#[test]
fn oati_replacement_passes_conform() {
    let (a, b, prof) = problem();
    // 24 replacement period × 2 steps per pass: ~60 passes crosses it twice.
    let opts = SolveOptions {
        rtol: 1e-30,
        atol: 0.0,
        max_iters: 120,
        s: 3,
        ..Default::default()
    };
    let trace = solve_trace(&a, &b, &prof, MethodKind::PipecgOati, &opts);
    let ir = method_ir(MethodKind::PipecgOati, 3);
    if let Err(d) = conform(&ir, &trace) {
        panic!("OATI replacement: {d}");
    }
}

/// Every planted broken spec is rejected by its designated layer against a
/// *real* trace of the method it sabotages — the verifier is not vacuous.
#[test]
fn planted_bugs_are_rejected_against_real_traces() {
    let (a, b, prof) = problem();
    for bug in pscg_ir::broken::all() {
        let statically = verify_static(&bug.ir);
        match bug.expect {
            pscg_ir::broken::Expect::Static => {
                assert!(
                    !statically.is_empty(),
                    "{}: static verifier missed it",
                    bug.name
                );
            }
            pscg_ir::broken::Expect::Conformance => {
                assert!(
                    statically.is_empty(),
                    "{}: expected statically clean, got {:?}",
                    bug.name,
                    statically
                );
                let opts = SolveOptions::with_rtol(1e-6).with_s(bug.ir.steps);
                let trace = solve_trace(&a, &b, &prof, bug.ir.kind, &opts);
                assert!(
                    conform(&bug.ir, &trace).is_err(),
                    "{}: conformance waved the planted bug through",
                    bug.name
                );
            }
        }
    }
}

//! The IR specs of all 11 implemented CG variants.
//!
//! Each spec is a faithful, node-for-op transcription of the corresponding
//! solver loop in `pipescg::methods` — prologue, steady-state body, and
//! (for PIPECG-OATI and the hybrid driver) the periodic replacement pass
//! and the phase-2 handoff. The specs assume the default verification
//! configuration: preconditioned residual norm, matched reference norm,
//! passive resilience (one wait per reduction), and a σ-scaled basis with
//! σ ≠ 1 for the s-step methods.

use pipescg::methods::MethodKind;

use crate::node::{MethodIr, Node, NodeKind, ReplacePhase, Sym};
use crate::spec::*;

/// The IR of `kind` at s-step parameter `s`. Like the solvers, the classic
/// methods ignore `s` (they advance one step per pass) and the depth-2
/// pipelined methods fix it to 2.
pub fn spec(kind: MethodKind, s: usize) -> MethodIr {
    match kind {
        MethodKind::Pcg => pcg(),
        MethodKind::Pipecg => pipecg(),
        MethodKind::Cg3 => cg3(),
        MethodKind::Scg => scg(s),
        MethodKind::ScgSspmv => scg_sspmv(s),
        MethodKind::Pscg => pscg(s),
        MethodKind::PipeScg => pipe_scg(s),
        MethodKind::PipePscg => pipe_pscg(MethodKind::PipePscg, s, None, 0.0, None),
        MethodKind::Pipecg3 => pipe_pscg(MethodKind::Pipecg3, 2, None, 10.0, None),
        MethodKind::PipecgOati => pipe_pscg(MethodKind::PipecgOati, 2, Some(24), 0.0, None),
        MethodKind::Hybrid => {
            let phase2 = pipe_pscg(MethodKind::PipecgOati, 2, Some(24), 0.0, None);
            pipe_pscg(MethodKind::Hybrid, s, None, 0.0, Some(Box::new(phase2)))
        }
    }
}

fn pcg() -> MethodIr {
    let mut setup = ref_norm();
    setup.extend(init_residual("r"));
    setup.extend([
        pc("r", "u"),
        dot("u", "r", "gamma.part"),
        blocking(1, "gamma.part", "gamma"),
        dot("u", "u", "norm.part"),
        blocking(1, "norm.part", "norm"),
        rescheck("norm"),
    ]);
    let body = vec![
        axpy(&["u", "p"], "p"), // p = u + β p
        spmv("p", "w"),
        dot("w", "p", "delta.part"),
        blocking(1, "delta.part", "delta"),
        axpy(&["p", "x"], "x"),
        axpy(&["w", "r"], "r"),
        pc("r", "u"),
        dot("u", "r", "gamma.part"),
        blocking(1, "gamma.part", "gamma"),
        dot("u", "u", "norm.part"),
        blocking(1, "norm.part", "norm"),
        rescheck("norm"),
    ];
    let check_at = body.len() - 1;
    MethodIr {
        kind: MethodKind::Pcg,
        steps: 1,
        setup,
        body,
        check_at,
        setup_check: true,
        replace: None,
        handoff: None,
    }
}

fn pipecg() -> MethodIr {
    let mut setup = ref_norm();
    setup.extend(init_residual("r"));
    setup.extend([pc("r", "u"), spmv("u", "w")]);
    let body = vec![
        dot("r", "u", "red.part"),
        dot("w", "u", "red.part"),
        dot("r", "r", "red.part"),
        dot("u", "u", "red.part"),
        post("red", 4, "red.part"),
        pc("w", "m"),
        spmv("m", "n"),
        wait("red", "red"),
        rescheck("red"), // check_at = 8
        axpy(&["n", "z"], "z"),
        axpy(&["m", "q"], "q"),
        axpy(&["w", "s"], "s"),
        axpy(&["u", "p"], "p"),
        axpy(&["p", "x"], "x"),
        axpy(&["s", "r"], "r"),
        axpy(&["q", "u"], "u"),
        axpy(&["z", "w"], "w"),
    ];
    MethodIr {
        kind: MethodKind::Pipecg,
        steps: 1,
        setup,
        body,
        check_at: 8,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

fn cg3() -> MethodIr {
    let mut setup = ref_norm();
    setup.extend(init_residual("r"));
    let body = vec![
        pc("r", "u"),
        spmv("u", "au"),
        dot("r", "u", "red.part"),
        dot("u", "au", "red.part"),
        dot("r", "r", "red.part"),
        dot("u", "u", "red.part"),
        blocking(4, "red.part", "red"),
        rescheck("red"), // check_at = 7
        // The two fused three-term updates of x and r.
        combine(12.0, 96.0, vec!["r".into(), "u".into(), "au".into()], "x"),
    ];
    MethodIr {
        kind: MethodKind::Cg3,
        steps: 1,
        setup,
        body,
        check_at: 7,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

/// Shared sCG/sCG-sSPMV prologue: residual straight into `pow[0]`, the σ
/// estimate from the first link, then the remaining monomial powers.
fn scg_setup(s: usize) -> Vec<Node> {
    let mut setup = ref_norm();
    setup.extend(init_residual(&col("pow", 0)));
    setup.push(spmv(col("pow", 0), col("pow", 1)));
    setup.extend(estimate_sigma(col("pow", 0), col("pow", 1)));
    setup.push(scale(col("pow", 1)));
    setup.extend(extend_scaled_powers("pow", 1, s));
    setup
}

fn pow_window(list: &str, off: usize, s: usize) -> Vec<Sym> {
    (off..off + s).map(|j| col(list, j)).collect()
}

fn scg(s: usize) -> MethodIr {
    let mut body = gram_assemble(s, "pow", "pow", "dirs", "gram.part");
    body.push(blocking(gram_doubles(s), "gram.part", "gram"));
    body.push(rescheck("gram"));
    let check_at = body.len() - 1;
    body.push(scalar_work(s, "gram", "coef"));
    body.extend(conjugate_window(s, pow_window("pow", 0, s), "dirs", "dirs"));
    body.push(block_gemv(s, "dirs", "x"));
    body.push(spmv("x", "ax"));
    body.push(axpy(&["ax", "b"], &col("pow", 0)));
    body.extend(extend_scaled_powers("pow", 0, s));
    MethodIr {
        kind: MethodKind::Scg,
        steps: s,
        setup: scg_setup(s),
        body,
        check_at,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

fn scg_sspmv(s: usize) -> MethodIr {
    let mut body = gram_assemble(s, "pow", "pow", "dirs", "gram.part");
    body.push(blocking(gram_doubles(s), "gram.part", "gram"));
    body.push(rescheck("gram"));
    let check_at = body.len() - 1;
    body.push(scalar_work(s, "gram", "coef"));
    body.extend(conjugate_window(s, pow_window("pow", 0, s), "dirs", "dirs"));
    body.extend(conjugate_window(
        s,
        pow_window("pow", 1, s),
        "adirs",
        "adirs",
    ));
    body.push(block_gemv(s, "dirs", "x"));
    body.push(block_gemv(s, "adirs", &col("pow", 0)));
    body.extend(extend_scaled_powers("pow", 0, s));
    MethodIr {
        kind: MethodKind::ScgSspmv,
        steps: s,
        setup: scg_setup(s),
        body,
        check_at,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

/// Shared preconditioned-chain prologue head: residual into `rpow[0]`, the
/// first dual link, σ, and `upow[1]`.
fn dual_setup_head() -> Vec<Node> {
    let mut setup = ref_norm();
    setup.extend(init_residual(&col("rpow", 0)));
    setup.push(pc(col("rpow", 0), col("upow", 0)));
    setup.push(spmv(col("upow", 0), col("rpow", 1)));
    setup.extend(estimate_sigma(col("rpow", 0), col("rpow", 1)));
    setup.push(scale(col("rpow", 1)));
    setup.push(pc(col("rpow", 1), col("upow", 1)));
    setup
}

fn pscg(s: usize) -> MethodIr {
    let mut setup = dual_setup_head();
    setup.extend(extend_dual_powers("rpow", "upow", 1, s));
    let mut body = gram_assemble(s, "upow", "rpow", "udirs", "gram.part");
    body.push(blocking(gram_doubles(s), "gram.part", "gram"));
    body.push(rescheck("gram"));
    let check_at = body.len() - 1;
    body.push(scalar_work(s, "gram", "coef"));
    body.extend(conjugate_window(
        s,
        pow_window("upow", 0, s),
        "udirs",
        "udirs",
    ));
    body.push(block_gemv(s, "udirs", "x"));
    body.push(spmv("x", "ax"));
    body.push(axpy(&["ax", "b"], &col("rpow", 0)));
    body.extend(extend_dual_powers("rpow", "upow", 0, s));
    MethodIr {
        kind: MethodKind::Pscg,
        steps: s,
        setup,
        body,
        check_at,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

fn pipe_scg(s: usize) -> MethodIr {
    let mut setup = ref_norm();
    setup.extend(init_residual(&col("pow", 0)));
    setup.push(spmv(col("pow", 0), col("pow", 1)));
    setup.extend(estimate_sigma(col("pow", 0), col("pow", 1)));
    setup.push(scale(col("pow", 1)));
    setup.extend(extend_scaled_powers("pow", 1, s));
    setup.extend(gram_assemble(s, "pow", "pow", "dirs", "gram.part"));
    setup.push(post("gram", gram_doubles(s), "gram.part"));
    setup.extend(extend_scaled_powers("pow", s, 2 * s));

    let mut body = vec![wait("gram", "gram"), rescheck("gram")];
    let check_at = 1;
    body.push(scalar_work(s, "gram", "coef"));
    body.extend(conjugate_window(s, pow_window("pow", 0, s), "dirs", "dirs"));
    for j in 0..=s {
        body.extend(conjugate_window(
            s,
            pow_window("pow", j + 1, s),
            "apow",
            "apow",
        ));
    }
    body.push(block_gemv(s, "dirs", "x"));
    for j in 0..=s {
        body.extend(block_gemv_sub_into(s, "apow", col("pow", j), col("pow", j)));
    }
    body.extend(gram_assemble(s, "pow", "pow", "dirs", "gram.part"));
    body.push(post("gram", gram_doubles(s), "gram.part"));
    body.extend(extend_scaled_powers("pow", s, 2 * s));
    MethodIr {
        kind: MethodKind::PipeScg,
        steps: s,
        setup,
        body,
        check_at,
        setup_check: false,
        replace: None,
        handoff: None,
    }
}

/// The pipelined preconditioned s-step core shared by PIPE-PsCG, PIPECG3,
/// PIPECG-OATI and the hybrid driver (`pipe_pscg::solve_with`).
fn pipe_pscg(
    kind: MethodKind,
    s: usize,
    replace_every: Option<usize>,
    extra_flops_per_row: f64,
    handoff: Option<Box<MethodIr>>,
) -> MethodIr {
    let mut setup = dual_setup_head();
    setup.extend(extend_dual_powers("rpow", "upow", 1, s));
    setup.extend(gram_assemble(s, "upow", "rpow", "udirs", "gram.part"));
    setup.push(post("gram", gram_doubles(s), "gram.part"));
    setup.extend(extend_dual_powers("rpow", "upow", s, 2 * s));

    // The common head (wait … x update) and tail (Gram post + deep powers)
    // of both the recurrence pass and the replacement pass.
    let mut head = vec![wait("gram", "gram"), rescheck("gram")];
    let check_at = 1;
    head.push(scalar_work(s, "gram", "coef"));
    head.extend(conjugate_window(
        s,
        pow_window("upow", 0, s),
        "udirs",
        "udirs",
    ));
    head.extend(conjugate_window(
        s,
        pow_window("rpow", 0, s),
        "rdirs",
        "rdirs",
    ));
    for j in 0..=s {
        head.extend(conjugate_window(
            s,
            pow_window("upow", j + 1, s),
            "uapow",
            "uapow",
        ));
        head.extend(conjugate_window(
            s,
            pow_window("rpow", j + 1, s),
            "rapow",
            "rapow",
        ));
    }
    head.push(block_gemv(s, "udirs", "x"));
    if extra_flops_per_row > 0.0 {
        // PIPECG3's explicitly charged three-term-recurrence surcharge.
        head.push(Node {
            kind: NodeKind::Combine {
                flops_per_row: extra_flops_per_row,
                bytes_per_row: 8.0 * extra_flops_per_row,
            },
            reads: vec![],
            writes: vec![],
        });
    }
    let mut tail = gram_assemble(s, "upow", "rpow", "udirs", "gram.part");
    tail.push(post("gram", gram_doubles(s), "gram.part"));
    tail.extend(extend_dual_powers("rpow", "upow", s, 2 * s));

    let mut body = head.clone();
    for j in 0..=s {
        body.extend(block_gemv_sub_into(
            s,
            "rapow",
            col("rpow", j),
            col("rpow", j),
        ));
        body.extend(block_gemv_sub_into(
            s,
            "uapow",
            col("upow", j),
            col("upow", j),
        ));
    }
    body.extend(tail.clone());

    let replace = replace_every.map(|every| {
        let mut rbody = head.clone();
        rbody.push(spmv("x", "ax"));
        rbody.push(axpy(&["ax", "b"], &col("rpow", 0)));
        rbody.extend(extend_dual_powers("rpow", "upow", 0, s));
        rbody.extend(tail.clone());
        ReplacePhase { every, body: rbody }
    });

    MethodIr {
        kind,
        steps: s,
        setup,
        body,
        check_at,
        setup_check: false,
        replace,
        handoff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [MethodKind; 11] = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ];

    #[test]
    fn every_method_has_a_spec_with_a_check() {
        for kind in ALL {
            let ir = spec(kind, 3);
            assert!(
                matches!(ir.body[ir.check_at].kind, NodeKind::ResCheck),
                "{kind:?}: check_at must point at a ResCheck"
            );
            assert!(ir.node_count() > 0);
            assert_eq!(ir.kind, kind);
        }
    }

    #[test]
    fn pipelined_specs_post_in_setup_and_wait_first() {
        for kind in [MethodKind::PipeScg, MethodKind::PipePscg] {
            let ir = spec(kind, 3);
            assert!(ir
                .setup
                .iter()
                .any(|n| matches!(n.kind, NodeKind::ArPost { .. })));
            assert!(matches!(ir.body[0].kind, NodeKind::ArWait { .. }));
        }
    }

    #[test]
    fn oati_replacement_pass_has_unoverlapped_kernels() {
        let ir = spec(MethodKind::PipecgOati, 3);
        let rp = ir.replace.as_ref().expect("OATI replaces periodically");
        assert_eq!(rp.every, 24);
        let spmvs = |nodes: &[Node]| {
            nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Spmv))
                .count()
        };
        // Replacement recomputes the residual and the first s links on top
        // of the overlapped deep powers.
        assert!(spmvs(&rp.body) > spmvs(&ir.body));
    }
}

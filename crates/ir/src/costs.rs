//! Aggregate per-body-pass cost totals derived from a method's IR.
//!
//! The IR nodes already carry their cost metadata (`flops_per_row`,
//! `bytes_per_row`, MPK depth) because the conformance checker matches on
//! it. This module folds one steady-state body into a [`BodyCost`] so the
//! observatory tier (`pscg-bench`'s perf-report) can price each recorded
//! kernel against the *declared* schedule instead of re-deriving per-method
//! constants: one body pass advances [`MethodIr::steps`] CG steps, and the
//! totals below say how many of each kernel that pass contains and what
//! per-row work the IR claims for the local BLAS-1 kinds.

use crate::node::{MethodIr, NodeKind};

/// Kernel totals for one steady-state body pass of a method.
///
/// Counts are per *body pass* (which advances [`MethodIr::steps`] CG
/// steps), not per CG step. The `*_flops_per_row` / `*_bytes_per_row`
/// fields are **sums over the pass's nodes of that kind** — divide by the
/// matching count for the per-call average a span-level roofline needs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BodyCost {
    /// Plain SpMV nodes in the body.
    pub spmvs: usize,
    /// Matrix-powers kernel nodes in the body.
    pub mpks: usize,
    /// Sum of MPK depths (total SpMV-equivalents done by MPK sweeps).
    pub mpk_depth_total: usize,
    /// Preconditioner applications in the body.
    pub pcs: usize,
    /// Local dot-product nodes in the body.
    pub dots: usize,
    /// Sum of the dot nodes' declared FLOPs per local row.
    pub dot_flops_per_row: f64,
    /// Sum of the dot nodes' declared bytes per local row.
    pub dot_bytes_per_row: f64,
    /// Local combine (VMA) nodes in the body.
    pub combines: usize,
    /// Sum of the combine nodes' declared FLOPs per local row.
    pub combine_flops_per_row: f64,
    /// Sum of the combine nodes' declared bytes per local row.
    pub combine_bytes_per_row: f64,
    /// Total rank-replicated scalar-recurrence FLOPs in the body.
    pub scalar_flops: f64,
}

/// Folds the steady-state body of `ir` into its kernel totals.
///
/// Only the primary body is counted — replacement passes and phase-2
/// handoffs are occasional or transitional and would skew a steady-state
/// roofline; callers wanting those can fold `ir.replace` / `ir.handoff`
/// themselves with the same logic.
pub fn body_cost(ir: &MethodIr) -> BodyCost {
    let mut c = BodyCost::default();
    for node in &ir.body {
        match &node.kind {
            NodeKind::Spmv => c.spmvs += 1,
            NodeKind::Mpk { depth } => {
                c.mpks += 1;
                c.mpk_depth_total += depth;
            }
            NodeKind::Pc => c.pcs += 1,
            NodeKind::Dot {
                flops_per_row,
                bytes_per_row,
            } => {
                c.dots += 1;
                c.dot_flops_per_row += flops_per_row;
                c.dot_bytes_per_row += bytes_per_row;
            }
            NodeKind::Combine {
                flops_per_row,
                bytes_per_row,
            } => {
                c.combines += 1;
                c.combine_flops_per_row += flops_per_row;
                c.combine_bytes_per_row += bytes_per_row;
            }
            NodeKind::ScalarRecurrence { flops } => c.scalar_flops += flops,
            NodeKind::ArPost { .. }
            | NodeKind::ArWait { .. }
            | NodeKind::ArBlocking { .. }
            | NodeKind::ResCheck => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::spec;
    use pipescg::methods::MethodKind;

    #[test]
    fn pcg_body_counts_match_its_schedule() {
        // PCG's body: one SpMV, one PC, its dots and AXPYs — no MPK.
        let c = body_cost(&spec(MethodKind::Pcg, 3));
        assert_eq!(c.spmvs, 1);
        assert_eq!(c.mpks, 0);
        assert_eq!(c.pcs, 1);
        assert!(c.dots >= 1, "PCG must have local dot work");
        assert!(c.combines >= 1, "PCG must have AXPY work");
    }

    #[test]
    fn sstep_bodies_scale_spmv_equivalents_with_s() {
        for s in [2, 4] {
            let c = body_cost(&spec(MethodKind::Pscg, s));
            assert!(
                c.spmvs + c.mpk_depth_total >= s,
                "s={s}: {} SpMV-equivalents must cover the block",
                c.spmvs + c.mpk_depth_total
            );
            assert!(c.scalar_flops > 0.0, "s-step methods solve s×s systems");
        }
        let c2 = body_cost(&spec(MethodKind::Pscg, 2));
        let c4 = body_cost(&spec(MethodKind::Pscg, 4));
        assert!(
            c4.spmvs + c4.mpk_depth_total > c2.spmvs + c2.mpk_depth_total,
            "basis work must grow with s"
        );
    }

    #[test]
    fn every_method_body_has_some_priced_work() {
        for kind in [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::Pipecg3,
            MethodKind::PipecgOati,
            MethodKind::Scg,
            MethodKind::ScgSspmv,
            MethodKind::Pscg,
            MethodKind::PipeScg,
            MethodKind::PipePscg,
            MethodKind::Hybrid,
            MethodKind::Cg3,
        ] {
            let ir = spec(kind, 3);
            let c = body_cost(&ir);
            assert!(
                c.spmvs + c.mpk_depth_total >= 1,
                "{kind:?}: body must advance the Krylov space"
            );
            assert!(
                c.dot_bytes_per_row + c.combine_bytes_per_row > 0.0,
                "{kind:?}: body must have local BLAS-1 traffic"
            );
        }
    }
}

//! Builders for IR nodes and the shared schedule fragments.
//!
//! The cost metadata baked into these constructors mirrors the charge
//! constants of `pscg_sim::Context`'s convenience kernels (an AXPY is
//! `Combine(2, 24)`, a dot is `Dot(2, 16)`, …) and the s-step helpers of
//! `pipescg::sstep` (Gram-packet assembly, σ-scaled power extension, the
//! dual preconditioned chains). The conformance checker requires exact
//! equality with the recorded ops, so any drift between a solver loop and
//! its spec is caught the first time the trace is replayed.

use crate::node::{Node, NodeKind, Sym};

/// The symbol for column `j` of a power list, e.g. `col("pow", 3)` →
/// `"pow[3]"`.
pub fn col(list: &str, j: usize) -> Sym {
    format!("{list}[{j}]")
}

fn syms(names: &[&str]) -> Vec<Sym> {
    names.iter().map(|s| s.to_string()).collect()
}

/// An SpMV node reading `x`, writing `y`.
pub fn spmv(x: impl Into<Sym>, y: impl Into<Sym>) -> Node {
    Node {
        kind: NodeKind::Spmv,
        reads: vec![x.into()],
        writes: vec![y.into()],
    }
}

/// A matrix-powers-kernel node of the given depth over `block`.
pub fn mpk(depth: usize, block: impl Into<Sym>) -> Node {
    let block = block.into();
    Node {
        kind: NodeKind::Mpk { depth },
        reads: vec![block.clone()],
        writes: vec![block],
    }
}

/// A preconditioner application reading `r`, writing `u`.
pub fn pc(r: impl Into<Sym>, u: impl Into<Sym>) -> Node {
    Node {
        kind: NodeKind::Pc,
        reads: vec![r.into()],
        writes: vec![u.into()],
    }
}

/// A rank-local dot with explicit per-row cost, arbitrary operands.
pub fn dot_cost(flops_per_row: f64, bytes_per_row: f64, reads: Vec<Sym>, part: &str) -> Node {
    Node {
        kind: NodeKind::Dot {
            flops_per_row,
            bytes_per_row,
        },
        reads,
        writes: vec![part.to_string()],
    }
}

/// A plain two-operand local dot (`Dot(2, 16)`) accumulating into `part`.
pub fn dot(a: &str, b: &str, part: &str) -> Node {
    dot_cost(2.0, 16.0, syms(&[a, b]), part)
}

/// A VMA-class local node with explicit per-row cost.
pub fn combine(flops_per_row: f64, bytes_per_row: f64, reads: Vec<Sym>, write: &str) -> Node {
    Node {
        kind: NodeKind::Combine {
            flops_per_row,
            bytes_per_row,
        },
        reads,
        writes: vec![write.to_string()],
    }
}

/// An AXPY/AYPX/WAXPY-shaped update (`Combine(2, 24)`).
pub fn axpy(reads: &[&str], write: &str) -> Node {
    combine(2.0, 24.0, syms(reads), write)
}

/// A `scale_v`-shaped update (`Combine(1, 16)`) of one power column by σ.
pub fn scale(column: Sym) -> Node {
    combine(1.0, 16.0, vec![column.clone(), "sigma".into()], &column)
}

/// The rank-replicated s-step scalar work (`4s³ + 8s²` flops), consuming
/// the reduced Gram packet and producing the recurrence coefficients.
pub fn scalar_work(s: usize, gram: &str, coef: &str) -> Node {
    let sf = s as f64;
    Node {
        kind: NodeKind::ScalarRecurrence {
            flops: 4.0 * sf * sf * sf + 8.0 * sf * sf,
        },
        reads: vec![gram.to_string()],
        writes: vec![coef.to_string()],
    }
}

/// A non-blocking allreduce post of `doubles` values for window `tag`,
/// consuming the locally accumulated partials.
pub fn post(tag: &'static str, doubles: usize, part: &str) -> Node {
    Node {
        kind: NodeKind::ArPost { tag, doubles },
        reads: vec![part.to_string()],
        writes: vec![],
    }
}

/// The wait closing window `tag`, defining the reduced result symbol.
pub fn wait(tag: &'static str, result: &str) -> Node {
    Node {
        kind: NodeKind::ArWait { tag },
        reads: vec![],
        writes: vec![result.to_string()],
    }
}

/// A blocking allreduce of `doubles` values: consumes the partials, defines
/// the reduced result.
pub fn blocking(doubles: usize, part: &str, result: &str) -> Node {
    Node {
        kind: NodeKind::ArBlocking { doubles },
        reads: vec![part.to_string()],
        writes: vec![result.to_string()],
    }
}

/// A convergence check reading the reduced norms.
pub fn rescheck(result: &str) -> Node {
    Node {
        kind: NodeKind::ResCheck,
        reads: vec![result.to_string()],
        writes: vec![],
    }
}

// ---------------------------------------------------------------------------
// Shared fragments (methods::mod and pipescg::sstep counterparts).
// ---------------------------------------------------------------------------

/// `global_ref_norm`: one PC, three dots, one blocking allreduce of 3.
pub fn ref_norm() -> Vec<Node> {
    vec![
        pc("b", "ub"),
        dot("b", "b", "bnorm.part"),
        dot("ub", "ub", "bnorm.part"),
        dot("b", "ub", "bnorm.part"),
        blocking(3, "bnorm.part", "bnorm"),
    ]
}

/// `init_residual`: `r = b − A x` — always one SpMV plus one WAXPY.
pub fn init_residual(r: &str) -> Vec<Node> {
    vec![spmv("x", "ax"), axpy(&["ax", "b"], r)]
}

/// `estimate_sigma`: two dots over the first chain link and a blocking
/// allreduce of 2, defining the σ basis scale.
pub fn estimate_sigma(num: Sym, den: Sym) -> Vec<Node> {
    vec![
        dot_cost(2.0, 16.0, vec![num.clone(), num], "sigma.part"),
        dot_cost(2.0, 16.0, vec![den.clone(), den], "sigma.part"),
        blocking(2, "sigma.part", "sigma"),
    ]
}

/// `extend_scaled_powers(pow, from, to, σ)`: `to − from` SpMVs, each
/// followed by a σ scaling of the fresh column (the specs assume σ ≠ 1,
/// which holds for every non-degenerate operator).
pub fn extend_scaled_powers(list: &str, from: usize, to: usize) -> Vec<Node> {
    let mut out = Vec::new();
    for j in from + 1..=to {
        out.push(spmv(col(list, j - 1), col(list, j)));
        out.push(scale(col(list, j)));
    }
    out
}

/// `build_basis`/`extend_powers` of the dual preconditioned chains:
/// `rpow[j+1] = σ·A·upow[j]`, `upow[j+1] = M⁻¹ rpow[j+1]`, plus the
/// boundary PC when starting from a fresh residual (`from == 0`).
pub fn extend_dual_powers(rpow: &str, upow: &str, from: usize, to: usize) -> Vec<Node> {
    let mut out = Vec::new();
    if from == 0 {
        out.push(pc(col(rpow, 0), col(upow, 0)));
    }
    for j in from..to {
        out.push(spmv(col(upow, j), col(rpow, j + 1)));
        out.push(scale(col(rpow, j + 1)));
        out.push(pc(col(rpow, j + 1), col(upow, j + 1)));
    }
    out
}

/// `GramPacket::assemble(s, upow, rpow, udirs)`: the `2s² + 2s + 3`-value
/// packet as `2s + 5` local dot nodes — the two Gram-range dots (N and C),
/// the `g1`/`g2` strips, and the three norms — all accumulating into
/// `part`.
pub fn gram_assemble(s: usize, upow: &str, rpow: &str, udirs: &str, part: &str) -> Vec<Node> {
    let sf = s as f64;
    let mut out = Vec::new();
    // N = gram(upow[0..s], rpow[1..=s]).
    let mut n_reads: Vec<Sym> = (0..s).map(|j| col(upow, j)).collect();
    n_reads.extend((1..=s).map(|j| col(rpow, j)));
    out.push(dot_cost(2.0 * sf * sf, 16.0 * sf, n_reads, part));
    // C = gram(udirs, rpow[1..=s]).
    let mut c_reads: Vec<Sym> = vec![udirs.to_string()];
    c_reads.extend((1..=s).map(|j| col(rpow, j)));
    out.push(dot_cost(2.0 * sf * sf, 16.0 * sf, c_reads, part));
    // g1[j] = (upow[j], rpow[0]).
    for j in 0..s {
        out.push(dot_cost(2.0, 16.0, vec![col(upow, j), col(rpow, 0)], part));
    }
    // g2[m] = (udirs[m], rpow[0]).
    for _ in 0..s {
        out.push(dot_cost(
            2.0,
            16.0,
            vec![udirs.to_string(), col(rpow, 0)],
            part,
        ));
    }
    // rr, uu, ru.
    out.push(dot_cost(2.0, 16.0, vec![col(rpow, 0), col(rpow, 0)], part));
    out.push(dot_cost(2.0, 16.0, vec![col(upow, 0), col(upow, 0)], part));
    out.push(dot_cost(2.0, 16.0, vec![col(rpow, 0), col(upow, 0)], part));
    out
}

/// Payload size of the Gram packet (`GramPacket::len`).
pub fn gram_doubles(s: usize) -> usize {
    2 * s * s + 2 * s + 3
}

/// `conjugate_window` = `block_combine`: `s` copy moves then one fused
/// block linear combination (`k = m = s` in every use the solvers make).
pub fn conjugate_window(s: usize, window_reads: Vec<Sym>, prev: &str, dst: &str) -> Vec<Node> {
    let sf = s as f64;
    let mut out = Vec::new();
    for _ in 0..s {
        out.push(combine(0.0, 16.0, window_reads.clone(), dst));
    }
    let mut reads = window_reads;
    reads.push(prev.to_string());
    reads.push("coef".to_string());
    out.push(combine(2.0 * sf * sf, 24.0 * sf, reads, dst));
    out
}

/// `block_gemv_acc` / `block_gemv_sub`: one fused block GEMV of `s`
/// columns into `dst`.
pub fn block_gemv(s: usize, block: &str, dst: &str) -> Node {
    let sf = s as f64;
    combine(2.0 * sf, 8.0 * (sf + 2.0), syms(&[block, "coef", dst]), dst)
}

/// `block_gemv_sub_into`: a copy move then the fused GEMV subtraction,
/// writing a fresh column.
pub fn block_gemv_sub_into(s: usize, block: &str, src: Sym, dst: Sym) -> Vec<Node> {
    let sf = s as f64;
    vec![
        combine(0.0, 16.0, vec![src], &dst),
        Node {
            kind: NodeKind::Combine {
                flops_per_row: 2.0 * sf,
                bytes_per_row: 8.0 * (sf + 2.0),
            },
            reads: vec![block.to_string(), "coef".to_string(), dst.clone()],
            writes: vec![dst],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_assemble_has_2s_plus_5_nodes() {
        for s in 1..=6 {
            assert_eq!(gram_assemble(s, "u", "r", "d", "p").len(), 2 * s + 5);
            assert_eq!(gram_doubles(s), 2 * s * s + 2 * s + 3);
        }
    }

    #[test]
    fn extension_fragments_count_kernels() {
        let ext = extend_scaled_powers("pow", 1, 4);
        assert_eq!(
            ext.iter()
                .filter(|n| matches!(n.kind, NodeKind::Spmv))
                .count(),
            3
        );
        let dual = extend_dual_powers("r", "u", 0, 3);
        assert_eq!(
            dual.iter()
                .filter(|n| matches!(n.kind, NodeKind::Pc))
                .count(),
            4,
            "boundary PC plus one per link"
        );
    }
}

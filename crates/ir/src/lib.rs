//! Declarative per-iteration schedule IR for the CG variants, with a
//! by-construction static verifier and a dynamic conformance checker.
//!
//! The repo's other analyses (`pscg_analysis`) inspect *recorded traces* —
//! they can only vouch for schedules a solve happened to execute. This
//! crate adds the complementary artifact: a typed, declarative IR of each
//! method's per-iteration schedule ([`MethodIr`]: prologue + steady-state
//! body + optional replacement pass and phase-2 handoff), over which three
//! static passes run **without executing a solve**:
//!
//! * [`dataflow`] — symbolic buffer dataflow: no use-before-def of
//!   reduction results (reading inside your own overlap window is the
//!   read-before-wait bug), no write to a window-owned dot operand while
//!   the reduction is in flight (the Cools–Vanroose hazard, derived from
//!   the spec instead of observed in a trace), window-protocol sanity.
//! * [`table`] — Table I structure derivation: allreduce cadence and the
//!   per-window kernel mix, cross-checked against
//!   `pscg_analysis::structure::MethodShape` *and*
//!   `pipescg::costmodel::table1`, so the IR, the trace analyzer and the
//!   cost model cannot drift apart silently.
//! * [`overlap`] — overlap-capacity report: what each method hides under
//!   its in-flight reductions.
//!
//! What ties the IR to reality is [`conform`]: replaying a recorded
//! [`pscg_sim::OpTrace`] op-for-op against the IR and failing on the first
//! divergence. The specs in [`methods`] pass both layers for all eleven
//! methods; the planted bugs in [`broken`] (feature `broken-ir`) are each
//! rejected, keeping the verifier non-vacuous. `repro --verify-ir` wires
//! the whole stack into the reproduction binary (exit code 16 on failure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conform;
pub mod costs;
pub mod dataflow;
pub mod methods;
pub mod node;
pub mod overlap;
pub mod spec;
pub mod table;

#[cfg(any(test, feature = "broken-ir"))]
pub mod broken;

pub use conform::{conform, Divergence};
pub use dataflow::StaticFinding;
pub use methods::spec as method_ir;
pub use node::{MethodIr, Node, NodeKind, ReplacePhase, Sym};

/// Run every static pass over one IR (and, recursively, its phase-2
/// handoff). An empty result means the schedule is well-formed, hazard-free
/// and structurally exactly what the analyzer and the cost model claim —
/// all established without executing a solve.
pub fn verify_static(ir: &MethodIr) -> Vec<StaticFinding> {
    let mut out = dataflow::analyze(ir);
    out.extend(table::check(ir));
    if let Some(handoff) = &ir.handoff {
        out.extend(verify_static(handoff));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipescg::methods::MethodKind;

    const ALL: [MethodKind; 11] = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ];

    #[test]
    fn all_eleven_specs_verify_statically() {
        for s in [2, 3, 4, 5] {
            for kind in ALL {
                let findings = verify_static(&method_ir(kind, s));
                assert!(
                    findings.is_empty(),
                    "{kind:?} at s={s}: {}",
                    findings
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
    }

    #[test]
    fn every_planted_bug_is_rejected_by_its_layer() {
        for b in broken::all() {
            let findings = verify_static(&b.ir);
            match b.expect {
                broken::Expect::Static => assert!(
                    !findings.is_empty(),
                    "{}: static verifier missed the planted bug",
                    b.name
                ),
                broken::Expect::Conformance => assert!(
                    findings.is_empty(),
                    "{}: must be statically clean (only conformance catches it), got {:?}",
                    b.name,
                    findings
                ),
            }
        }
    }
}

//! Deliberately broken IR specs — the non-vacuousness gate.
//!
//! Each entry takes a correct method spec and plants one realistic schedule
//! bug. The verifier (static passes + conformance) must reject every one of
//! them; a verifier that waves any of these through proves nothing about
//! the clean specs. Compiled only for tests and under the `broken-ir`
//! feature, mirroring the solver-side `broken-variants` gate.

use pipescg::methods::MethodKind;

use crate::methods::spec;
use crate::node::{MethodIr, NodeKind};
use crate::spec::{axpy, blocking, combine, wait};

/// Which layer of the verifier must reject a broken spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Rejected without executing a solve, by [`crate::verify_static`].
    Static,
    /// Statically clean by construction; only the trace replay
    /// ([`crate::conform::conform`]) can catch it.
    Conformance,
}

/// One planted schedule bug.
pub struct BrokenSpec {
    /// Stable mode name (`repro --ir-broken <name>`).
    pub name: &'static str,
    /// The sabotaged IR.
    pub ir: MethodIr,
    /// The layer that must reject it.
    pub expect: Expect,
    /// What the bug models.
    pub detail: &'static str,
}

fn post_index(ir: &MethodIr) -> usize {
    ir.body
        .iter()
        .position(|n| matches!(n.kind, NodeKind::ArPost { .. }))
        .expect("a pipelined spec posts in its body")
}

/// `read-before-wait`: the convergence check consumes the reduced Gram
/// packet *before* the wait lands — on `P > 1` every rank would branch on
/// different, un-reduced values (the Cools–Vanroose silent-corruption
/// class, here as a read instead of a write).
fn read_before_wait() -> MethodIr {
    let mut ir = spec(MethodKind::PipePscg, 3);
    ir.body.swap(0, 1); // [rescheck, wait, …]
    ir.check_at = 0;
    ir
}

/// `write-dot-input`: an AXPY clobbers a dot operand while the reduction
/// that read it is still in flight — the canonical pipelined-CG hazard.
fn write_dot_input() -> MethodIr {
    let mut ir = spec(MethodKind::PipeScg, 3);
    let at = post_index(&ir) + 1;
    ir.body.insert(at, axpy(&["x", "pow[0]"], "pow[0]"));
    ir
}

/// `wait-hoisted`: the wait is moved to immediately follow the post, so
/// the overlap window hides nothing — the pipeline exists in name only.
fn wait_hoisted() -> MethodIr {
    let mut ir = spec(MethodKind::PipeScg, 3);
    ir.body.remove(0); // drop the steady-state wait…
    ir.check_at = 0;
    let at = post_index(&ir) + 1;
    ir.body.insert(at, wait("gram", "gram")); // …and hoist it to the post
    ir
}

/// `wrong-cadence`: an extra blocking reduction sneaks into PsCG's body,
/// doubling the allreduce count Table I promises.
fn wrong_cadence() -> MethodIr {
    let mut ir = spec(MethodKind::Pscg, 3);
    let at = ir
        .body
        .iter()
        .position(|n| matches!(n.kind, NodeKind::ArBlocking { .. }))
        .expect("PsCG reduces once per pass")
        + 1;
    ir.body.insert(at, blocking(1, "gram.part", "extra"));
    ir
}

/// `phantom-combine`: the spec claims a fused update the solver never
/// performs. Dataflow and structure are untouched — only replaying a real
/// trace exposes it, which is exactly what keeps the conformance layer
/// honest.
fn phantom_combine() -> MethodIr {
    let mut ir = spec(MethodKind::Scg, 3);
    ir.body
        .push(combine(2.0, 24.0, vec!["ax".into(), "b".into()], "junk"));
    ir
}

/// All planted bugs, in a stable order.
pub fn all() -> Vec<BrokenSpec> {
    vec![
        BrokenSpec {
            name: "read-before-wait",
            ir: read_before_wait(),
            expect: Expect::Static,
            detail: "convergence check reads the Gram packet inside its own overlap window",
        },
        BrokenSpec {
            name: "write-dot-input",
            ir: write_dot_input(),
            expect: Expect::Static,
            detail: "AXPY clobbers a dot operand owned by the in-flight reduction",
        },
        BrokenSpec {
            name: "wait-hoisted",
            ir: wait_hoisted(),
            expect: Expect::Static,
            detail: "wait hoisted to the post; the overlap window is empty",
        },
        BrokenSpec {
            name: "wrong-cadence",
            ir: wrong_cadence(),
            expect: Expect::Static,
            detail: "extra blocking allreduce doubles PsCG's Table I cadence",
        },
        BrokenSpec {
            name: "phantom-combine",
            ir: phantom_combine(),
            expect: Expect::Conformance,
            detail: "spec claims a fused update the solver never records",
        },
    ]
}

/// Look up one planted bug by name.
pub fn by_name(name: &str) -> Option<BrokenSpec> {
    all().into_iter().find(|b| b.name == name)
}

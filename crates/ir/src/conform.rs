//! Dynamic IR↔trace conformance: replay a recorded [`OpTrace`] against the
//! method's declarative IR and fail on the first divergence.
//!
//! The contract (DESIGN.md §10): the trace must be exactly
//! `setup · body* · prefix`, where each body pass is the steady-state body
//! or — on replacement iterations — the replacement body, and the final
//! prefix ends immediately after a convergence check (every solver exit —
//! converged, max-iterations, breakdown, stagnation — sits right after the
//! check). A two-phase driver may instead diverge from its body *at the
//! node after the check*, at which point the suffix must conform to the
//! handoff IR from the top.
//!
//! Matching is per-op and exact on kind and cost metadata (FLOP/byte rates,
//! payload sizes, MPK depth); runtime buffer ids, preconditioner cost
//! fields, and residual values are ignored. Post→wait pairing is checked by
//! *handle*: the trace op id recorded at a tagged post must be the id the
//! same-tag wait retires, so a spec cannot pass by pairing the right kinds
//! with crossed windows.

use std::collections::HashMap;
use std::fmt;

use pscg_sim::{LocalKind, Op, OpTrace};

use crate::node::{MethodIr, Node, NodeKind};

/// The first point where a trace stops following its IR.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index into `trace.ops` of the offending op (== `ops.len()` when the
    /// trace ended while the schedule expected more).
    pub at: usize,
    /// Where in the schedule the mismatch happened (phase, pass, node).
    pub context: String,
    /// The node the IR expected here.
    pub expected: String,
    /// The op the trace recorded, or `None` when the trace ended.
    pub got: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.got {
            Some(got) => write!(
                f,
                "op {}: {} expected {}, trace recorded {}",
                self.at, self.context, self.expected, got
            ),
            None => write!(
                f,
                "op {}: trace ended at {}, which expected {} (not a legal exit point)",
                self.at, self.context, self.expected
            ),
        }
    }
}

/// Does `op` realise `node`? `tags` carries the window-tag → runtime-handle
/// bindings established by earlier posts; a matching `ArPost` records its
/// binding here.
fn op_matches(node: &Node, op: &Op, tags: &mut HashMap<&'static str, u64>) -> bool {
    match (&node.kind, op) {
        (NodeKind::Spmv, Op::Spmv { .. }) => true,
        (NodeKind::Mpk { depth }, Op::Mpk { depth: d, .. }) => depth == d,
        (NodeKind::Pc, Op::Pc { .. }) => true,
        (
            NodeKind::Dot {
                flops_per_row,
                bytes_per_row,
            },
            Op::Local {
                kind: LocalKind::Dot,
                flops_per_row: f,
                bytes_per_row: b,
                ..
            },
        )
        | (
            NodeKind::Combine {
                flops_per_row,
                bytes_per_row,
            },
            Op::Local {
                kind: LocalKind::Vma,
                flops_per_row: f,
                bytes_per_row: b,
                ..
            },
        ) => flops_per_row == f && bytes_per_row == b,
        (NodeKind::ScalarRecurrence { flops }, Op::Scalar { flops: f }) => flops == f,
        (NodeKind::ArPost { tag, doubles }, Op::ArPost { id, doubles: d, .. }) if doubles == d => {
            tags.insert(tag, *id);
            true
        }
        (NodeKind::ArWait { tag }, Op::ArWait { id }) => tags.get(tag) == Some(id),
        (NodeKind::ArBlocking { doubles }, Op::ArBlocking { doubles: d, .. }) => doubles == d,
        (NodeKind::ResCheck, Op::ResCheck { .. }) => true,
        _ => false,
    }
}

fn diverge(at: usize, context: String, node: &Node, op: Option<&Op>) -> Divergence {
    Divergence {
        at,
        context,
        expected: node.kind.describe(),
        got: op.map(|o| format!("{o:?}")),
    }
}

/// Replay `ops[start..]` against `ir` from its prologue. Returns `Ok` only
/// when the whole suffix is consumed at a legal exit point.
fn run(ir: &MethodIr, ops: &[Op], start: usize) -> Result<(), Divergence> {
    let mut tags: HashMap<&'static str, u64> = HashMap::new();
    let mut pos = start;

    for (i, node) in ir.setup.iter().enumerate() {
        let context = format!("{:?} setup node {i}", ir.kind);
        let Some(op) = ops.get(pos) else {
            return Err(diverge(pos, context, node, None));
        };
        if !op_matches(node, op, &mut tags) {
            return Err(diverge(pos, context, node, Some(op)));
        }
        pos += 1;
    }
    if ir.setup_check && pos == ops.len() {
        return Ok(()); // converged on the initial residual
    }

    let mut outer = 0usize;
    loop {
        let body = ir.body_for(outer);
        assert!(!body.is_empty(), "an IR body cannot be empty");
        for (i, node) in body.iter().enumerate() {
            let context = format!("{:?} pass {outer} node {i}", ir.kind);
            let Some(op) = ops.get(pos) else {
                // Exhausted mid-pass: only legal right after the check
                // (i == check_at + 1 — the check itself matched `pos - 1`).
                if i == ir.check_at + 1 {
                    return Ok(());
                }
                return Err(diverge(pos, context, node, None));
            };
            if !op_matches(node, op, &mut tags) {
                // A two-phase driver may leave its body right after the
                // check; the remainder must then conform to the phase-2 IR.
                // When the check is the last body node, "right after" is
                // node 0 of the following pass.
                let after_check = if i == 0 {
                    outer > 0 && ir.check_at + 1 == ir.body_for(outer - 1).len()
                } else {
                    i == ir.check_at + 1
                };
                if after_check {
                    if let Some(handoff) = &ir.handoff {
                        return run(handoff, ops, pos);
                    }
                }
                return Err(diverge(pos, context, node, Some(op)));
            }
            pos += 1;
            if i == ir.check_at && pos == ops.len() {
                return Ok(()); // exited at this pass's convergence check
            }
        }
        outer += 1;
    }
}

/// Check that `trace` (a complete solve recording) conforms to `ir`.
pub fn conform(ir: &MethodIr, trace: &OpTrace) -> Result<(), Divergence> {
    run(ir, &trace.ops, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{dot, post, rescheck, spmv, wait};
    use pipescg::methods::MethodKind;

    fn tiny_ir() -> MethodIr {
        MethodIr {
            kind: MethodKind::Pipecg,
            steps: 1,
            setup: vec![spmv("x", "ax")],
            body: vec![
                dot("r", "r", "red.part"),
                post("red", 1, "red.part"),
                spmv("m", "n"),
                wait("red", "red"),
                rescheck("red"),
            ],
            check_at: 4,
            setup_check: false,
            replace: None,
            handoff: None,
        }
    }

    fn pass(t: &mut OpTrace, id: u64) {
        t.push(Op::local(LocalKind::Dot, 2.0, 16.0));
        t.push(Op::post(id, 1));
        t.push(Op::spmv(0));
        t.push(Op::wait(id));
        t.push(Op::ResCheck { relres: 0.5 });
    }

    #[test]
    fn conforming_trace_passes() {
        let mut t = OpTrace::new(8);
        t.push(Op::spmv(0));
        pass(&mut t, 0);
        pass(&mut t, 1);
        assert_eq!(conform(&tiny_ir(), &t), Ok(()));
    }

    #[test]
    fn crossed_window_handles_diverge() {
        let mut t = OpTrace::new(8);
        t.push(Op::spmv(0));
        t.push(Op::local(LocalKind::Dot, 2.0, 16.0));
        t.push(Op::post(7, 1));
        t.push(Op::spmv(0));
        t.push(Op::wait(3)); // retires a handle this spec never posted
        t.push(Op::ResCheck { relres: 0.5 });
        let d = conform(&tiny_ir(), &t).unwrap_err();
        assert_eq!(d.at, 4);
        assert!(d.expected.contains("ArWait"));
    }

    #[test]
    fn wrong_cost_metadata_diverges() {
        let mut t = OpTrace::new(8);
        t.push(Op::spmv(0));
        t.push(Op::local(LocalKind::Dot, 2.0, 24.0)); // 24 B/row, spec says 16
        let d = conform(&tiny_ir(), &t).unwrap_err();
        assert_eq!(d.at, 1);
    }

    #[test]
    fn early_trace_end_is_a_divergence() {
        let mut t = OpTrace::new(8);
        t.push(Op::spmv(0));
        t.push(Op::local(LocalKind::Dot, 2.0, 16.0));
        t.push(Op::post(0, 1));
        let d = conform(&tiny_ir(), &t).unwrap_err();
        assert_eq!(d.at, 3);
        assert!(d.got.is_none());
    }

    #[test]
    fn handoff_conforms_the_suffix() {
        let phase2 = MethodIr {
            kind: MethodKind::Pcg,
            steps: 1,
            setup: vec![spmv("x", "ax")],
            body: vec![dot("r", "r", "n.part"), rescheck("n")],
            check_at: 1,
            setup_check: false,
            replace: None,
            handoff: None,
        };
        let mut ir = tiny_ir();
        ir.handoff = Some(Box::new(phase2));
        let mut t = OpTrace::new(8);
        t.push(Op::spmv(0));
        pass(&mut t, 0);
        // Phase 2 begins where phase 1's body would have continued.
        t.push(Op::spmv(0));
        t.push(Op::local(LocalKind::Dot, 2.0, 16.0));
        t.push(Op::ResCheck { relres: 0.5 });
        assert_eq!(conform(&ir, &t), Ok(()));
    }
}

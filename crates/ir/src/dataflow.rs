//! Static buffer-dataflow analysis over a method IR.
//!
//! Runs entirely on the declarative schedule — no solve is executed. Two
//! properties are checked by symbolically executing prologue + a few
//! steady-state passes (including a replacement pass when the method has
//! one):
//!
//! 1. **No use-before-def** of *deferred* symbols. Vector storage is
//!    treated as pre-allocated, but anything produced by a reduction
//!    pipeline — local partials (`Dot` writes), reduced results (`ArWait` /
//!    `ArBlocking` writes) and recurrence coefficients (`ScalarRecurrence`
//!    writes) — must be defined before it is read. Crucially, posting a
//!    window *kills* the window's result symbol until the matching wait
//!    redefines it, so reading a reduction result inside its own overlap
//!    window (a read-before-wait) is reported here.
//! 2. **No write during an open post→wait window that the window reads** —
//!    the Cools–Vanroose pipelined-CG hazard, derived statically with the
//!    same ownership model the dynamic checker in `pscg_analysis::hazards`
//!    applies to traces: the dot operands accumulated since the last
//!    reduction event become *owned* by the window at the post and are
//!    released at the wait; any non-MPK write to an owned symbol while the
//!    window is open is a hazard.
//!
//! Window-protocol defects (double post, wait without post, a window still
//! open at a legal termination point) are reported as well.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::node::{MethodIr, Node, NodeKind, Sym};

/// A defect found by the static passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticFinding {
    /// A deferred symbol is read before any node defines it — including a
    /// reduction result read between its post and its wait.
    UseBeforeDef {
        /// Phase (`"setup"`, `"body"`, `"replace"`, `"final"`) and node index.
        at: String,
        /// Description of the offending node.
        node: String,
        /// The undefined symbol.
        sym: Sym,
    },
    /// A symbol read by an open allreduce window is overwritten while the
    /// window is still in flight (the Cools–Vanroose hazard).
    WriteDuringWindow {
        /// Phase and node index.
        at: String,
        /// Description of the offending node.
        node: String,
        /// The open window's tag.
        tag: &'static str,
        /// The clobbered symbol.
        sym: Sym,
    },
    /// An `ArWait` with no matching open post.
    WaitWithoutPost {
        /// Phase and node index.
        at: String,
        /// The waited-for tag.
        tag: &'static str,
    },
    /// An `ArPost` on a tag whose previous window is still open.
    DoublePost {
        /// Phase and node index.
        at: String,
        /// The reposted tag.
        tag: &'static str,
    },
    /// A window still open at a point where the schedule may terminate.
    LeakedWindow {
        /// The leaked window's tag.
        tag: &'static str,
    },
    /// Derived schedule structure disagrees with the repo's structural
    /// model or cost model (see [`crate::table`]).
    Structure {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticFinding::UseBeforeDef { at, node, sym } => {
                write!(f, "use-before-def of `{sym}` at {at} ({node})")
            }
            StaticFinding::WriteDuringWindow { at, node, tag, sym } => write!(
                f,
                "write to `{sym}` owned by open window [{tag}] at {at} ({node})"
            ),
            StaticFinding::WaitWithoutPost { at, tag } => {
                write!(f, "wait without post for window [{tag}] at {at}")
            }
            StaticFinding::DoublePost { at, tag } => {
                write!(f, "double post of window [{tag}] at {at}")
            }
            StaticFinding::LeakedWindow { tag } => {
                write!(f, "window [{tag}] still open at a termination point")
            }
            StaticFinding::Structure { detail } => write!(f, "structure mismatch: {detail}"),
        }
    }
}

/// Is this node's write deferred (must be defined before read) rather than
/// pre-allocated vector storage?
fn defers_writes(kind: &NodeKind) -> bool {
    matches!(
        kind,
        NodeKind::Dot { .. }
            | NodeKind::ScalarRecurrence { .. }
            | NodeKind::ArWait { .. }
            | NodeKind::ArBlocking { .. }
    )
}

/// The symbolic machine state threaded through the phases.
struct Flow<'ir> {
    ir: &'ir MethodIr,
    /// Symbols currently defined.
    defined: BTreeSet<Sym>,
    /// Open windows: tag → symbols owned by the in-flight reduction.
    open: BTreeMap<&'static str, BTreeSet<Sym>>,
    /// Dot operands accumulated since the last reduction event.
    dot_inputs: BTreeSet<Sym>,
    /// Result symbols of each tagged window (writes of its wait nodes).
    results: BTreeMap<&'static str, BTreeSet<Sym>>,
    findings: Vec<StaticFinding>,
}

impl<'ir> Flow<'ir> {
    fn new(ir: &'ir MethodIr) -> Self {
        let mut deferred = BTreeSet::new();
        let mut mentioned = BTreeSet::new();
        let mut results: BTreeMap<&'static str, BTreeSet<Sym>> = BTreeMap::new();
        let mut phases: Vec<&[Node]> = vec![&ir.setup, &ir.body];
        if let Some(r) = &ir.replace {
            phases.push(&r.body);
        }
        for phase in phases {
            for node in phase {
                mentioned.extend(node.reads.iter().cloned());
                mentioned.extend(node.writes.iter().cloned());
                if defers_writes(&node.kind) {
                    deferred.extend(node.writes.iter().cloned());
                }
                if let NodeKind::ArWait { tag } = node.kind {
                    results
                        .entry(tag)
                        .or_default()
                        .extend(node.writes.iter().cloned());
                }
            }
        }
        let defined = mentioned.difference(&deferred).cloned().collect();
        Flow {
            ir,
            defined,
            open: BTreeMap::new(),
            dot_inputs: BTreeSet::new(),
            results,
            findings: Vec::new(),
        }
    }

    fn step(&mut self, phase: &str, index: usize, node: &Node) {
        let at = format!("{phase}[{index}]");
        let desc = node.kind.describe();
        for sym in &node.reads {
            if !self.defined.contains(sym) {
                self.findings.push(StaticFinding::UseBeforeDef {
                    at: at.clone(),
                    node: desc.clone(),
                    sym: sym.clone(),
                });
            }
        }
        // MPK sweeps stage into ghost-padded scratch and are exempt from the
        // window-ownership rule, exactly as in `pscg_analysis::hazards`.
        if !matches!(node.kind, NodeKind::Mpk { .. }) {
            for sym in &node.writes {
                for (tag, owned) in &self.open {
                    if owned.contains(sym) {
                        self.findings.push(StaticFinding::WriteDuringWindow {
                            at: at.clone(),
                            node: desc.clone(),
                            tag,
                            sym: sym.clone(),
                        });
                    }
                }
            }
        }
        match &node.kind {
            NodeKind::Dot { .. } => {
                self.dot_inputs.extend(node.reads.iter().cloned());
            }
            NodeKind::ArPost { tag, .. } => {
                if self.open.contains_key(tag) {
                    self.findings.push(StaticFinding::DoublePost { at, tag });
                } else {
                    self.open.insert(tag, std::mem::take(&mut self.dot_inputs));
                }
                // The window's result is stale until the wait lands.
                if let Some(res) = self.results.get(tag) {
                    for sym in res {
                        self.defined.remove(sym);
                    }
                }
            }
            NodeKind::ArWait { tag } => {
                if self.open.remove(tag).is_none() {
                    self.findings
                        .push(StaticFinding::WaitWithoutPost { at, tag });
                }
                self.dot_inputs.clear();
            }
            NodeKind::ArBlocking { .. } => {
                self.dot_inputs.clear();
            }
            _ => {}
        }
        self.defined.extend(node.writes.iter().cloned());
    }

    fn run_phase(&mut self, phase: &str, nodes: &[Node]) {
        for (index, node) in nodes.iter().enumerate() {
            self.step(phase, index, node);
        }
    }

    fn finish(mut self) -> Vec<StaticFinding> {
        // Final partial pass: the solvers terminate right after the body's
        // convergence check, so run up to it and require all windows closed.
        let upto = self.ir.check_at + 1;
        let body = self.ir.body[..upto.min(self.ir.body.len())].to_vec();
        self.run_phase("final", &body);
        for tag in self.open.keys() {
            self.findings.push(StaticFinding::LeakedWindow { tag });
        }
        self.findings
    }
}

/// Run the dataflow analysis on one IR (prologue, two steady-state passes,
/// the replacement pass when present, then a terminating partial pass).
/// Handoff IRs are analysed independently by [`crate::verify_static`].
pub fn analyze(ir: &MethodIr) -> Vec<StaticFinding> {
    let mut flow = Flow::new(ir);
    flow.run_phase("setup", &ir.setup);
    flow.run_phase("body", &ir.body);
    flow.run_phase("body", &ir.body);
    if let Some(r) = &ir.replace {
        flow.run_phase("replace", &r.body);
        flow.run_phase("body", &ir.body);
    }
    flow.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{blocking, dot, post, rescheck, spmv, wait};
    use pipescg::methods::MethodKind;

    fn ir_with_body(body: Vec<Node>, check_at: usize) -> MethodIr {
        MethodIr {
            kind: MethodKind::Pipecg,
            steps: 1,
            setup: vec![],
            body,
            check_at,
            setup_check: false,
            replace: None,
            handoff: None,
        }
    }

    #[test]
    fn read_before_wait_is_use_before_def() {
        let ir = ir_with_body(
            vec![
                dot("r", "r", "red.part"),
                post("red", 1, "red.part"),
                rescheck("red"), // reads the killed result
                wait("red", "red"),
            ],
            2,
        );
        let findings = analyze(&ir);
        assert!(findings
            .iter()
            .any(|f| matches!(f, StaticFinding::UseBeforeDef { sym, .. } if sym == "red")));
    }

    #[test]
    fn write_to_owned_operand_is_a_hazard() {
        let ir = ir_with_body(
            vec![
                dot("r", "r", "red.part"),
                post("red", 1, "red.part"),
                spmv("x", "r"), // clobbers an owned dot operand
                wait("red", "red"),
                rescheck("red"),
            ],
            4,
        );
        let findings = analyze(&ir);
        assert!(findings.iter().any(|f| matches!(
            f,
            StaticFinding::WriteDuringWindow { tag: "red", sym, .. } if sym == "r"
        )));
    }

    #[test]
    fn blocking_reduction_releases_ownership() {
        let ir = ir_with_body(
            vec![
                dot("r", "r", "red.part"),
                blocking(1, "red.part", "red"),
                spmv("x", "r"),
                rescheck("red"),
            ],
            3,
        );
        assert!(analyze(&ir).is_empty());
    }

    #[test]
    fn protocol_defects_are_reported() {
        let ir = ir_with_body(
            vec![
                wait("red", "red"),
                dot("r", "r", "red.part"),
                post("red", 1, "red.part"),
                post("red", 1, "red.part"),
                rescheck("red"),
            ],
            4,
        );
        let findings = analyze(&ir);
        assert!(findings
            .iter()
            .any(|f| matches!(f, StaticFinding::DoublePost { .. })));
        // The very first wait has no post yet.
        assert!(findings
            .iter()
            .any(|f| matches!(f, StaticFinding::WaitWithoutPost { .. })));
        assert!(findings
            .iter()
            .any(|f| matches!(f, StaticFinding::LeakedWindow { tag: "red" })));
    }
}

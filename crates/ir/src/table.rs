//! Table I structure derivation from the IR — no solve, no trace.
//!
//! [`derive`] reads a method's steady-state body and computes its
//! communication shape: reductions per pass, blocking vs overlapped
//! discipline, and the kernel mix hidden inside each post→wait window
//! (windows wrap around the loop back-edge, so a post near the end of the
//! body overlaps the tail of this pass plus the head of the next — exactly
//! how the pipelined s-step methods hide their deep basis extension).
//!
//! [`check`] then cross-validates the derived shape against the repo's two
//! independent descriptions of the same structure: the trace analyzer's
//! [`MethodShape`] table (`pscg_analysis::structure`) and the paper's cost
//! model (`pipescg::costmodel::table1`). Any of the three drifting apart
//! is reported as a [`StaticFinding::Structure`].

use pipescg::costmodel::table1;
use pscg_analysis::structure::{MethodShape, Pipeline};

use crate::dataflow::StaticFinding;
use crate::node::{MethodIr, Node, NodeKind};

/// The communication structure derived from a steady-state body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedStructure {
    /// Reduction discipline, in the analyzer's own vocabulary.
    pub pipeline: Pipeline,
    /// Reductions (posts + blocking) per body pass.
    pub reductions_per_pass: usize,
    /// SpMV applications per body pass (MPK sweeps count their depth).
    pub spmvs_per_pass: usize,
    /// Preconditioner applications per body pass.
    pub pcs_per_pass: usize,
}

fn count_spmvs(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n.kind {
            NodeKind::Spmv => 1,
            NodeKind::Mpk { depth } => depth,
            _ => 0,
        })
        .sum()
}

fn count_pcs(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Pc))
        .count()
}

/// The cyclic post→wait window of `tag` inside `body`: the nodes between
/// the post and the same-tag wait, wrapping around the loop back-edge when
/// the wait sits earlier in the body than the post.
pub fn cyclic_window<'a>(body: &'a [Node], tag: &str) -> Vec<&'a Node> {
    let p = body
        .iter()
        .position(|n| matches!(n.kind, NodeKind::ArPost { tag: t, .. } if t == tag));
    let w = body
        .iter()
        .position(|n| matches!(n.kind, NodeKind::ArWait { tag: t } if t == tag));
    match (p, w) {
        (Some(p), Some(w)) if w > p => body[p + 1..w].iter().collect(),
        (Some(p), Some(w)) => body[p + 1..].iter().chain(body[..w].iter()).collect(),
        _ => Vec::new(),
    }
}

/// Derive the communication structure of one body (steady state or
/// replacement pass). A present phase-2 handoff makes the whole method
/// [`Pipeline::Mixed`] regardless of the body's own discipline.
pub fn derive_body(body: &[Node], mixed: bool) -> DerivedStructure {
    let posts: Vec<&'static str> = body
        .iter()
        .filter_map(|n| match n.kind {
            NodeKind::ArPost { tag, .. } => Some(tag),
            _ => None,
        })
        .collect();
    let blocking = body
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::ArBlocking { .. }))
        .count();
    let reductions_per_pass = posts.len() + blocking;
    let pipeline = if mixed {
        Pipeline::Mixed
    } else if posts.is_empty() {
        Pipeline::Blocking { per_pass: blocking }
    } else {
        // All shipped pipelined methods have exactly one window per pass;
        // a multi-window body would still derive a definite shape (the
        // first window's mix), and the cadence check below would flag it.
        let window = cyclic_window(body, posts[0]);
        let spmvs: usize = window
            .iter()
            .map(|n| match n.kind {
                NodeKind::Spmv => 1,
                NodeKind::Mpk { depth } => depth,
                _ => 0,
            })
            .sum();
        let pcs = window
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Pc))
            .count();
        Pipeline::Overlapped {
            window_spmvs: spmvs,
            window_pcs: pcs,
        }
    };
    DerivedStructure {
        pipeline,
        reductions_per_pass,
        spmvs_per_pass: count_spmvs(body),
        pcs_per_pass: count_pcs(body),
    }
}

/// Derive the structure of a whole method IR (its steady-state body).
pub fn derive(ir: &MethodIr) -> DerivedStructure {
    derive_body(&ir.body, ir.handoff.is_some())
}

/// Allreduces per `s` CG steps implied by the derived structure.
pub fn derived_allreduces_per_s_steps(d: &DerivedStructure, steps: usize, s: usize) -> usize {
    d.reductions_per_pass * s.div_ceil(steps)
}

/// Cross-check the derived structure against `analysis::structure` and the
/// cost model's Table I. Returns one [`StaticFinding::Structure`] per
/// disagreement.
pub fn check(ir: &MethodIr) -> Vec<StaticFinding> {
    let mut out = Vec::new();
    let derived = derive(ir);
    let shape = MethodShape::of(ir.kind, ir.steps);

    if ir.steps != shape.steps_per_pass {
        out.push(StaticFinding::Structure {
            detail: format!(
                "{:?}: IR advances {} steps per pass, MethodShape says {}",
                ir.kind, ir.steps, shape.steps_per_pass
            ),
        });
    }
    if derived.pipeline != shape.pipeline {
        out.push(StaticFinding::Structure {
            detail: format!(
                "{:?}: IR derives {:?}, MethodShape says {:?}",
                ir.kind, derived.pipeline, shape.pipeline
            ),
        });
    }
    // The cadence must agree with the analyzer's closed form at a few block
    // sizes, not just the configured one.
    for s in 1..=8 {
        let ours = derived_allreduces_per_s_steps(&derived, ir.steps, s);
        let theirs = shape.allreduces_per_s_steps(s);
        if ours != theirs {
            out.push(StaticFinding::Structure {
                detail: format!(
                    "{:?}: {ours} derived allreduces per {s} steps, shape says {theirs}",
                    ir.kind
                ),
            });
            break;
        }
    }
    // And with the paper's Table I row, when the method has one.
    if let Some(name) = shape.table_row {
        match table1().iter().find(|r| r.method == name) {
            None => out.push(StaticFinding::Structure {
                detail: format!("{:?}: no costmodel::table1 row named {name}", ir.kind),
            }),
            Some(row) => {
                let ours = derived_allreduces_per_s_steps(&derived, ir.steps, ir.steps);
                let table = (row.allreduces)(ir.steps);
                if ours != table {
                    out.push(StaticFinding::Structure {
                        detail: format!(
                            "{name}: {ours} derived allreduces per s-step block, Table I says {table}"
                        ),
                    });
                }
            }
        }
    }
    // A pipelined method must not smuggle blocking reductions into the loop,
    // and its windows must hide real work (the Mixed invariant of
    // `structure::verify`).
    match derived.pipeline {
        Pipeline::Overlapped { window_spmvs, .. } => {
            if window_spmvs == 0 {
                out.push(StaticFinding::Structure {
                    detail: format!("{:?}: overlap window hides no SpMV", ir.kind),
                });
            }
            let blocking = ir
                .body
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::ArBlocking { .. }))
                .count();
            if blocking > 0 {
                out.push(StaticFinding::Structure {
                    detail: format!(
                        "{:?}: {blocking} blocking allreduces inside a pipelined body",
                        ir.kind
                    ),
                });
            }
        }
        Pipeline::Mixed => {
            // Phase 1 of a mixed driver is itself pipelined: every window
            // must hide at least one SpMV.
            for tag in ir.body.iter().filter_map(|n| match n.kind {
                NodeKind::ArPost { tag, .. } => Some(tag),
                _ => None,
            }) {
                let window = cyclic_window(&ir.body, tag);
                if !window
                    .iter()
                    .any(|n| matches!(n.kind, NodeKind::Spmv | NodeKind::Mpk { .. }))
                {
                    out.push(StaticFinding::Structure {
                        detail: format!("{:?}: window [{tag}] hides no SpMV", ir.kind),
                    });
                }
            }
        }
        Pipeline::Blocking { .. } => {}
    }
    // A replacement pass must preserve the steady-state communication
    // discipline (it replaces the recurrence, not the pipeline).
    if let Some(r) = &ir.replace {
        let rd = derive_body(&r.body, false);
        if rd.pipeline != derived.pipeline {
            out.push(StaticFinding::Structure {
                detail: format!(
                    "{:?}: replacement pass derives {:?}, steady state {:?}",
                    ir.kind, rd.pipeline, derived.pipeline
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::spec;
    use pipescg::methods::MethodKind;

    #[test]
    fn derived_shapes_match_the_analyzer() {
        for s in [2, 3, 4] {
            for kind in [
                MethodKind::Pcg,
                MethodKind::Pipecg,
                MethodKind::Cg3,
                MethodKind::Scg,
                MethodKind::Pscg,
                MethodKind::PipeScg,
                MethodKind::PipePscg,
            ] {
                let ir = spec(kind, s);
                assert_eq!(
                    derive(&ir).pipeline,
                    MethodShape::of(kind, ir.steps).pipeline,
                    "{kind:?} at s={s}"
                );
            }
        }
    }

    #[test]
    fn pipe_pscg_window_wraps_the_back_edge() {
        let ir = spec(MethodKind::PipePscg, 3);
        let window = cyclic_window(&ir.body, "gram");
        // The deep basis extension after the post runs under the window.
        assert_eq!(
            window
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Spmv))
                .count(),
            3
        );
        assert_eq!(
            window
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Pc))
                .count(),
            3
        );
    }

    #[test]
    fn hybrid_derives_mixed() {
        let ir = spec(MethodKind::Hybrid, 3);
        assert_eq!(derive(&ir).pipeline, Pipeline::Mixed);
        assert!(check(&ir).is_empty());
    }
}

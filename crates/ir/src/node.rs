//! The IR node set: typed kernel nodes with symbolic buffer defs/uses.
//!
//! One [`Node`] corresponds to exactly one [`pscg_sim::Op`] the solver
//! records — the conformance checker ([`crate::conform`]) holds the two
//! streams together op-for-op. Buffers are *symbolic* ([`Sym`] strings like
//! `"r"`, `"pow[3]"`, `"gram"`), not runtime [`pscg_sim::BufId`]s: the
//! static passes reason about the names, the dynamic checker ignores them
//! and matches kinds and cost metadata instead.

use pipescg::methods::MethodKind;

/// A symbolic buffer or scalar name inside one method's IR.
///
/// Conventions used by the shipped specs: plain names (`"r"`, `"dirs"`) are
/// rank-local vectors or vector blocks, `"pow[j]"` names one column of a
/// power list (see [`crate::spec::col`]), and reduction results carry the
/// window tag (`"gram"`, `"sigma"`). Only the *reduction dataflow* is
/// tracked precisely: vector storage is treated as pre-allocated, while any
/// symbol produced by a `Dot`, `Scalar`, `ArWait` or `ArBlocking` node must
/// be (re-)defined before use — see [`crate::dataflow`].
pub type Sym = String;

/// What kind of kernel (or schedule event) a node is.
///
/// The floating-point metadata (`flops_per_row`, `bytes_per_row`, `flops`,
/// `doubles`, `depth`) is part of the node identity: the conformance
/// checker requires the recorded op to carry exactly these values, which is
/// what makes an IR spec a *complete* description of the loop and not just
/// its communication skeleton.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Sparse matrix–vector product.
    Spmv,
    /// Matrix-powers kernel covering `depth` consecutive SpMVs.
    Mpk {
        /// Number of consecutive powers produced by the sweep.
        depth: usize,
    },
    /// Preconditioner application. Cost fields are preconditioner-dependent
    /// and deliberately not part of the IR (any `Op::Pc` matches).
    Pc,
    /// Rank-local dot-product work (`Op::Local` with `LocalKind::Dot`).
    Dot {
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
    },
    /// Rank-local vector-multiply-add work — AXPY-family updates and the
    /// fused recurrence combines (`Op::Local` with `LocalKind::Vma`).
    Combine {
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
    },
    /// Rank-replicated scalar recurrence work (the s × s solves).
    ScalarRecurrence {
        /// Total floating-point operations.
        flops: f64,
    },
    /// Post of a non-blocking allreduce. `tag` names the overlap window;
    /// the matching [`NodeKind::ArWait`] carries the same tag, which is how
    /// the post→wait completion edge is expressed in the IR (the runtime
    /// handle ids are resolved by the conformance checker).
    ArPost {
        /// Window name pairing this post with its wait.
        tag: &'static str,
        /// Payload size in f64 values.
        doubles: usize,
    },
    /// Completion wait closing the window opened by the same-tag post.
    ArWait {
        /// Window name pairing this wait with its post.
        tag: &'static str,
    },
    /// A blocking allreduce.
    ArBlocking {
        /// Payload size in f64 values.
        doubles: usize,
    },
    /// Convergence check. The iteration loop may legally terminate
    /// immediately after this node (and only here; see [`MethodIr::check_at`]).
    ResCheck,
}

impl NodeKind {
    /// Short human-readable name for reports and divergence messages.
    pub fn describe(&self) -> String {
        match self {
            NodeKind::Spmv => "Spmv".into(),
            NodeKind::Mpk { depth } => format!("Mpk(depth={depth})"),
            NodeKind::Pc => "Pc".into(),
            NodeKind::Dot {
                flops_per_row,
                bytes_per_row,
            } => format!("Dot({flops_per_row},{bytes_per_row})"),
            NodeKind::Combine {
                flops_per_row,
                bytes_per_row,
            } => format!("Combine({flops_per_row},{bytes_per_row})"),
            NodeKind::ScalarRecurrence { flops } => format!("Scalar({flops})"),
            NodeKind::ArPost { tag, doubles } => format!("ArPost[{tag}]({doubles})"),
            NodeKind::ArWait { tag } => format!("ArWait[{tag}]"),
            NodeKind::ArBlocking { doubles } => format!("ArBlocking({doubles})"),
            NodeKind::ResCheck => "ResCheck".into(),
        }
    }
}

/// One schedule node: a kernel plus its symbolic buffer uses and defs.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The kernel/event kind (including its cost metadata).
    pub kind: NodeKind,
    /// Symbols this node reads.
    pub reads: Vec<Sym>,
    /// Symbols this node writes (defines).
    pub writes: Vec<Sym>,
}

/// The alternative body a method runs on a *replacement* pass (PIPECG-OATI's
/// periodic non-recurrence computation).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacePhase {
    /// Replacement period: the alternative body runs on outer iterations
    /// `k` with `k > 0 && k % every == 0`, mirroring the solver.
    pub every: usize,
    /// The full body of a replacement pass (not a diff against `body`).
    pub body: Vec<Node>,
}

/// The declarative schedule IR of one method: a prologue run once, then a
/// steady-state body repeated until the convergence check terminates it.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodIr {
    /// The method this IR describes.
    pub kind: MethodKind,
    /// CG steps advanced per body pass (the s-step block size; 1 for the
    /// classic methods, 2 for the depth-2 pipelined methods).
    pub steps: usize,
    /// Prologue: reference norm, initial residual, basis construction, and
    /// — for the pipelined s-step methods — the lead-in post and first
    /// overlap window.
    pub setup: Vec<Node>,
    /// Steady-state per-iteration schedule.
    pub body: Vec<Node>,
    /// Index of the [`NodeKind::ResCheck`] in `body` after which the loop
    /// may terminate. A conforming trace ends exactly after some pass's
    /// check (converged, max-iterations, or breakdown — the solvers place
    /// every exit there), never mid-body elsewhere.
    pub check_at: usize,
    /// True when `setup` ends with its own convergence check at which the
    /// solve may already terminate (PCG checks the initial residual).
    pub setup_check: bool,
    /// Periodic replacement pass, when the method has one.
    pub replace: Option<ReplacePhase>,
    /// Phase-2 IR for a two-phase driver (Hybrid-pipelined): after a pass
    /// whose check is followed by divergence from `body`, the trace must
    /// instead conform to this IR from that point on.
    pub handoff: Option<Box<MethodIr>>,
}

impl MethodIr {
    /// Total node count (setup + body + replacement + handoff), for reports.
    pub fn node_count(&self) -> usize {
        self.setup.len()
            + self.body.len()
            + self.replace.as_ref().map_or(0, |r| r.body.len())
            + self.handoff.as_ref().map_or(0, |h| h.node_count())
    }

    /// The body of outer iteration `outer` — the replacement body on
    /// replacement passes, the steady-state body otherwise.
    pub fn body_for(&self, outer: usize) -> &[Node] {
        match &self.replace {
            Some(r) if outer > 0 && outer.is_multiple_of(r.every) => &r.body,
            _ => &self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_compact() {
        assert_eq!(NodeKind::Spmv.describe(), "Spmv");
        assert_eq!(
            NodeKind::ArPost {
                tag: "gram",
                doubles: 4
            }
            .describe(),
            "ArPost[gram](4)"
        );
        assert_eq!(
            NodeKind::Dot {
                flops_per_row: 2.0,
                bytes_per_row: 16.0
            }
            .describe(),
            "Dot(2,16)"
        );
    }

    #[test]
    fn body_for_selects_replacement_passes() {
        let node = Node {
            kind: NodeKind::Spmv,
            reads: vec![],
            writes: vec![],
        };
        let ir = MethodIr {
            kind: MethodKind::PipecgOati,
            steps: 2,
            setup: vec![],
            body: vec![node.clone()],
            check_at: 0,
            setup_check: false,
            replace: Some(ReplacePhase {
                every: 3,
                body: vec![node.clone(), node.clone()],
            }),
            handoff: None,
        };
        assert_eq!(ir.body_for(0).len(), 1);
        assert_eq!(ir.body_for(3).len(), 2);
        assert_eq!(ir.body_for(4).len(), 1);
        assert_eq!(ir.body_for(6).len(), 2);
        assert_eq!(ir.node_count(), 3);
    }
}

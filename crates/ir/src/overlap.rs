//! Overlap-capacity reporting: how much local work each method's IR
//! schedules under its in-flight reductions.
//!
//! This is the quantity the paper's pipelining argument turns on — a
//! reduction is only free if the window hides enough kernel time — and it
//! falls straight out of the IR without running a solve. The report is
//! printed by `repro --verify-ir` next to the pass/fail findings.

use crate::node::{MethodIr, NodeKind};
use crate::table::cyclic_window;

/// The kernel mix scheduled inside one steady-state overlap window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCapacity {
    /// The window's tag.
    pub tag: &'static str,
    /// SpMV applications under the window (MPK sweeps count their depth).
    pub spmvs: usize,
    /// Preconditioner applications under the window.
    pub pcs: usize,
    /// Local dot/VMA kernels under the window.
    pub locals: usize,
    /// Scalar-recurrence nodes under the window.
    pub scalars: usize,
}

/// Overlap capacity of one method IR: one entry per steady-state window,
/// empty for the blocking methods.
pub fn report(ir: &MethodIr) -> Vec<WindowCapacity> {
    let mut out = Vec::new();
    for node in &ir.body {
        let NodeKind::ArPost { tag, .. } = node.kind else {
            continue;
        };
        let window = cyclic_window(&ir.body, tag);
        let mut cap = WindowCapacity {
            tag,
            spmvs: 0,
            pcs: 0,
            locals: 0,
            scalars: 0,
        };
        for n in window {
            match n.kind {
                NodeKind::Spmv => cap.spmvs += 1,
                NodeKind::Mpk { depth } => cap.spmvs += depth,
                NodeKind::Pc => cap.pcs += 1,
                NodeKind::Dot { .. } | NodeKind::Combine { .. } => cap.locals += 1,
                NodeKind::ScalarRecurrence { .. } => cap.scalars += 1,
                _ => {}
            }
        }
        out.push(cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::spec;
    use pipescg::methods::MethodKind;

    #[test]
    fn blocking_methods_have_no_windows() {
        for kind in [MethodKind::Pcg, MethodKind::Scg, MethodKind::Pscg] {
            assert!(report(&spec(kind, 3)).is_empty());
        }
    }

    #[test]
    fn pipelined_windows_hide_the_deep_extension() {
        let caps = report(&spec(MethodKind::PipePscg, 4));
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].spmvs, 4);
        assert_eq!(caps[0].pcs, 4);
        // σ scalings of the fresh columns also run under the window.
        assert!(caps[0].locals >= 4);
    }
}

//! OS / system noise: the straggler penalty at synchronisation points.
//!
//! On a real machine every rank suffers random interruptions (OS ticks,
//! daemons, network contention). A synchronising collective over `p` ranks
//! waits for the *slowest* rank, so its expected delay grows with `p` even
//! though each rank's mean delay is constant. For i.i.d. exponential jitter
//! with scale `σ`, the expected maximum over `p` ranks is `σ·H_p ≈ σ·ln p`.
//! This superlogarithmic growth — not the `log₂ p` latency tree — is what
//! makes allreduce the dominant cost at high core counts on production
//! systems (the premise of the paper's §IV: "the allreduce cost will become
//! the most dominant term"), so we model it explicitly and deterministically.

/// Deterministic straggler-noise model.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Exponential jitter scale per synchronisation, seconds.
    pub sigma: f64,
    /// Rank count at which resonance effects double the base penalty
    /// (`f64::INFINITY` disables the tail).
    pub resonance_ranks: f64,
}

impl NoiseModel {
    /// No noise (ideal machine, unit tests).
    pub fn none() -> Self {
        NoiseModel {
            sigma: 0.0,
            resonance_ranks: f64::INFINITY,
        }
    }

    /// Calibrated to busy-Cray behaviour: tens of microseconds of straggler
    /// delay per collective at thousand-core scale, consistent with the
    /// allreduce timings reported for the XC40 class in the pipelining
    /// literature (Ghysels & Vanroose 2014). The linear resonance tail
    /// models the super-logarithmic degradation of synchronising
    /// collectives observed on production systems once OS-noise events
    /// start compounding across the reduction tree (Hoefler et al.'s noise
    /// simulations); it is what lets one machine model reproduce *both*
    /// PCG's early saturation and the G vs 2–3·(PC+SPMV) regime the paper
    /// reports at 120 nodes.
    pub fn default_cray() -> Self {
        NoiseModel {
            sigma: 50.0e-6,
            resonance_ranks: 1500.0,
        }
    }

    /// Expected straggler delay for one synchronisation over `p` ranks:
    /// `σ·(ln p + p/resonance)`.
    pub fn sync_penalty(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.sigma * ((p as f64).ln() + p as f64 / self.resonance_ranks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_zero_everywhere() {
        let n = NoiseModel::none();
        assert_eq!(n.sync_penalty(1), 0.0);
        assert_eq!(n.sync_penalty(100_000), 0.0);
    }

    #[test]
    fn penalty_grows_slowly() {
        let n = NoiseModel::default_cray();
        assert_eq!(n.sync_penalty(1), 0.0);
        let p24 = n.sync_penalty(24);
        let p2880 = n.sync_penalty(2880);
        assert!(p2880 > p24);
        // ln growth plus the resonance tail: x120 ranks is ~3x the penalty,
        // far from linear scaling.
        assert!(p2880 / p24 < 4.0);
        assert!(p2880 / p24 > 2.0);
    }
}

//! The execution-context abstraction: one solver codebase, three engines.
//!
//! Every solver in `pipescg` is written as an SPMD program against
//! [`Context`]: it owns vectors of `vec_len()` entries, computes *local* dot
//! products and Gram matrices, and combines them with explicit
//! (non-)blocking allreduces — exactly the structure of the paper's MPI
//! implementation. The trait has three implementations:
//!
//! * [`SimCtx`] — a single "rank" owning the whole problem. Runs the real
//!   numerics and (optionally) records an [`OpTrace`] for the replay engine.
//!   This is the engine behind all scaling figures.
//! * `RankCtx` (in [`crate::thread`]) — one of `P` real threads exchanging
//!   messages through the thread-backed MPI-like runtime. Validates that the
//!   solvers are genuinely distributed (local data + explicit communication).
//!
//! The provided methods (`axpy`, `local_dot`, `block_add_mul`, …) pair each
//! numerical kernel with its cost declaration so that solvers cannot forget
//! to charge the machine model for the recurrence-LC FLOPs that Table I of
//! the paper accounts so carefully.

use std::collections::HashMap;

use pscg_obs as obs;
use pscg_obs::SpanKind;
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::kernels;
use pscg_sparse::op::Operator;
use pscg_sparse::{CsrMatrix, MultiVector};

use pscg_fault::{
    CompletionFault, FaultPlan, FaultRecord, FaultSite, Injector, RankEvent, RankFault,
};

use crate::collective::{CommId, RankFailure, ReduceTimeout, WaitOutcome};
use crate::profile::MatrixProfile;
use crate::trace::{BufId, LocalKind, Op, OpTrace};

/// Handle to an in-flight non-blocking allreduce. Must be waited exactly
/// once; dropping it without waiting loses the reduction (as in MPI).
#[derive(Debug)]
pub struct ReduceHandle {
    pub(crate) id: u64,
}

/// Operation counters, validated against the paper's Table I in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounters {
    /// Sparse matrix–vector products.
    pub spmv: u64,
    /// Matrix-powers-kernel invocations (each computing several powers).
    pub mpk: u64,
    /// Preconditioner applications.
    pub pc: u64,
    /// Blocking allreduces.
    pub blocking_allreduce: u64,
    /// Non-blocking allreduces (posted).
    pub nonblocking_allreduce: u64,
    /// Total f64 values reduced.
    pub reduced_doubles: u64,
    /// VMA / recurrence-LC floating-point operations (absolute count).
    pub vma_flops: f64,
    /// Local dot-product floating-point operations (absolute count).
    pub dot_flops: f64,
    /// Rank-replicated scalar-work floating-point operations.
    pub scalar_flops: f64,
    /// Vectors allocated through the context (the paper's Memory column).
    pub vectors_allocated: usize,
}

impl OpCounters {
    /// Total allreduce operations of either kind.
    pub fn allreduces(&self) -> u64 {
        self.blocking_allreduce + self.nonblocking_allreduce
    }
}

/// Outcome of a survivor-side buddy-recovery attempt
/// (see [`Context::buddy_recover`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BuddyRecovery {
    /// No rank failure is active; there is nothing to recover.
    NoFailure,
    /// The failed rank's buddy is dead too: the partition is unrecoverable.
    Lost {
        /// The rank whose partition was lost.
        rank: u32,
        /// Its (also dead) buddy that held the only copy.
        buddy: u32,
    },
    /// The failed rank's partition was rebuilt from its buddy's in-memory
    /// checkpoint and the solve may resume on the survivor communicator.
    Restored {
        /// The rank that was rebuilt.
        rank: u32,
        /// The last buddy-checkpointed iterate, or `None` when the death
        /// preceded the first checkpoint (restart from scratch).
        x: Option<Vec<f64>>,
    },
}

/// The SPMD execution context (see module docs).
pub trait Context {
    /// Global problem dimension.
    fn nrows(&self) -> usize;
    /// Length of locally owned vectors (`== nrows()` for the sim engine).
    fn vec_len(&self) -> usize;
    /// This rank's id.
    fn rank(&self) -> usize;
    /// Total ranks.
    fn nranks(&self) -> usize;

    /// `y = A x` on the local rows (halo exchange included).
    fn spmv(&mut self, x: &[f64], y: &mut [f64]);

    /// Matrix-powers kernel: fills `pow[j] = σ·A·pow[j−1]` for
    /// `j = from+1 ..= to` with a *single* widened halo exchange
    /// (Hoemmen's CA-SpMV). The default falls back to repeated SpMVs
    /// (numerically identical); the tracing engine overrides it to record
    /// the communication-avoiding cost.
    fn mpk(&mut self, pow: &mut MultiVector, from: usize, to: usize, sigma: f64) {
        for j in from + 1..=to {
            {
                let (src, dst) = pow.col_pair_mut(j - 1, j);
                self.spmv(src, dst);
            }
            // pscg-lint: allow(float-eq, exact identity-scaling skip; sigma is a set parameter, not computed)
            if sigma != 1.0 {
                self.scale_v(sigma, pow.col_mut(j));
            }
        }
    }
    /// `u = M⁻¹ r` on the local rows.
    fn pc_apply(&mut self, r: &[f64], u: &mut [f64]);

    /// Attempts to demote the preconditioner apply to fp32 (see
    /// [`pscg_sparse::op::Operator::demote_precision`]). Engines without a
    /// precision-switchable preconditioner refuse — the default.
    fn pc_demote(&mut self) -> bool {
        false
    }
    /// Restores the fp64 preconditioner apply (no-op when never demoted).
    fn pc_promote(&mut self) {}
    /// True while the preconditioner applies in reduced (fp32) precision.
    fn pc_demoted(&self) -> bool {
        false
    }

    /// Non-zeros of the operator matrix, for the self-describing telemetry
    /// header and roofline attribution. Engines that do not know return 0
    /// (the default), and attribution degrades to time-only rows.
    fn matrix_nnz(&self) -> usize {
        0
    }
    /// The preconditioner's declared `(flops_per_row, bytes_per_row)`
    /// apply cost, zeros when unknown (the default).
    fn pc_cost_rates(&self) -> (f64, f64) {
        (0.0, 0.0)
    }

    /// Blocking sum-allreduce of `vals`.
    fn allreduce(&mut self, vals: &[f64]) -> Vec<f64>;
    /// Posts a non-blocking sum-allreduce of `vals`.
    fn iallreduce(&mut self, vals: &[f64]) -> ReduceHandle;
    /// Completes a posted allreduce, returning the global sums.
    fn wait(&mut self, h: ReduceHandle) -> Vec<f64>;
    /// Attempts to complete a posted allreduce, surfacing an injected
    /// completion fault as a [`WaitOutcome::TimedOut`] instead of a hang.
    /// Engines without fault injection complete unconditionally (the
    /// default), so on a clean run this *is* [`Context::wait`].
    fn try_wait(&mut self, h: ReduceHandle) -> WaitOutcome {
        WaitOutcome::Done(self.wait(h))
    }
    /// Reads the values of a posted allreduce **without** completing it.
    ///
    /// This is deliberately wrong-by-construction: each engine hands back
    /// its *rank-local* contribution, not the global sums — exactly what a
    /// mis-pipelined method sees when it consumes a reduction result before
    /// `MPI_Wait`. On one rank the numbers coincide with the reduced ones,
    /// so the bug is silent in serial testing; the tracing engine records an
    /// [`Op::RedRead`] so the static schedule analyzer can flag it. Correct
    /// solvers never call this.
    fn peek_pending(&mut self, h: &ReduceHandle) -> Vec<f64>;

    /// The rank failure currently poisoning this communicator, if any.
    ///
    /// A **pure getter**: implementations must not record trace ops or
    /// touch counters, so solver loops may poll it after every collective
    /// and clean runs stay bitwise-identical. Engines without a
    /// rank-failure model never fail (the default).
    fn rank_failure(&self) -> Option<RankFailure> {
        None
    }

    /// Stores a survivor-side in-memory buddy checkpoint of the iterate:
    /// each rank ships its partition of `x` to a neighbor so a single rank
    /// death can be repaired without touching a filesystem. Engines without
    /// a rank-failure model discard it (the default).
    fn buddy_put(&mut self, _x: &[f64]) {}

    /// Attempts to repair an active rank failure from the buddy checkpoint,
    /// shrinking the communicator to the survivors on success. Engines
    /// without a rank-failure model report [`BuddyRecovery::NoFailure`]
    /// (the default).
    fn buddy_recover(&mut self) -> BuddyRecovery {
        BuddyRecovery::NoFailure
    }

    /// Appends one recovery-ladder code (see the solver crate's
    /// `resilience::code` table) to the engine's recovery log, making
    /// recovery *decisions* part of the deterministic observable outcome.
    /// No-op by default.
    fn note_recovery_code(&mut self, _code: u64) {}

    /// Interns the identity of a rank-local vector for the trace.
    ///
    /// Engines that do not track buffers return [`BufId::ANON`] (the
    /// default); the tracing engine maps the storage address to a stable id
    /// so hazard analysis can reason about aliasing.
    fn buf_of(&mut self, _v: &[f64]) -> BufId {
        BufId::ANON
    }

    /// Interns the identity of a block of vectors (see [`Context::buf_of`]).
    fn buf_of_multi(&mut self, _m: &MultiVector) -> BufId {
        BufId::ANON
    }

    /// Charges rank-local vector work to the cost model (`per row` refers to
    /// one locally owned vector element).
    fn charge_local(&mut self, kind: LocalKind, flops_per_row: f64, bytes_per_row: f64);
    /// Like [`Context::charge_local`], additionally declaring which tracked
    /// buffers the kernel read and wrote (for the schedule analyzer). The
    /// default discards the dataflow and charges cost only.
    fn charge_local_rw(
        &mut self,
        kind: LocalKind,
        flops_per_row: f64,
        bytes_per_row: f64,
        _reads: [BufId; 2],
        _write: BufId,
    ) {
        self.charge_local(kind, flops_per_row, bytes_per_row);
    }
    /// Charges rank-replicated scalar work (s × s solves).
    fn charge_scalar(&mut self, flops: f64);
    /// Reports the relative residual at a convergence check (for the
    /// time–residual trajectories of the paper's Figure 5).
    fn note_residual(&mut self, relres: f64);

    /// Read access to the counters.
    fn counters(&self) -> &OpCounters;
    /// Write access to the counters.
    fn counters_mut(&mut self) -> &mut OpCounters;

    // --- provided numerical helpers (kernel + cost declaration) ---

    /// Allocates a zeroed local vector, counting it against the method's
    /// memory footprint.
    fn alloc_vec(&mut self) -> Vec<f64> {
        self.counters_mut().vectors_allocated += 1;
        vec![0.0; self.vec_len()]
    }

    /// Allocates a zeroed `vec_len × ncols` block.
    fn alloc_multi(&mut self, ncols: usize) -> MultiVector {
        self.counters_mut().vectors_allocated += ncols;
        MultiVector::zeros(self.vec_len(), ncols)
    }

    /// `y += a·x`.
    fn axpy(&mut self, a: f64, x: &[f64], y: &mut [f64]) {
        kernels::axpy(a, x, y);
        let (bx, by) = (self.buf_of(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Vma, 2.0, 24.0, [bx, by], by);
    }

    /// `y = x + a·y`.
    fn aypx(&mut self, a: f64, x: &[f64], y: &mut [f64]) {
        kernels::aypx(a, x, y);
        let (bx, by) = (self.buf_of(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Vma, 2.0, 24.0, [bx, by], by);
    }

    /// `z = x + a·y`.
    fn waxpy(&mut self, z: &mut [f64], a: f64, y: &[f64], x: &[f64]) {
        kernels::waxpy(z, a, y, x);
        let (bx, by, bz) = (self.buf_of(x), self.buf_of(y), self.buf_of(z));
        self.charge_local_rw(LocalKind::Vma, 2.0, 24.0, [bx, by], bz);
    }

    /// `y = x`.
    fn copy_v(&mut self, x: &[f64], y: &mut [f64]) {
        kernels::copy(x, y);
        let (bx, by) = (self.buf_of(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Vma, 0.0, 16.0, [bx, BufId::ANON], by);
    }

    /// `x *= a`.
    fn scale_v(&mut self, a: f64, x: &mut [f64]) {
        kernels::scale(a, x);
        let bx = self.buf_of(x);
        self.charge_local_rw(LocalKind::Vma, 1.0, 16.0, [bx, BufId::ANON], bx);
    }

    /// Local part of the dot product `xᵀy`; combine with an allreduce.
    fn local_dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        let _sp = obs::span(SpanKind::Dot);
        let (bx, by) = (self.buf_of(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Dot, 2.0, 16.0, [bx, by], BufId::ANON);
        kernels::dot(x, y)
    }

    /// Block update `X += Y·B` (the recurrence linear combinations).
    fn block_add_mul(&mut self, x: &mut MultiVector, y: &MultiVector, b: &DenseMatrix) {
        let _sp = obs::span(SpanKind::Combine);
        x.add_mul(y, b);
        let (k, m) = (y.ncols() as f64, x.ncols() as f64);
        let (bx, by) = (self.buf_of_multi(x), self.buf_of_multi(y));
        self.charge_local_rw(
            LocalKind::Vma,
            2.0 * k * m,
            8.0 * (k + 2.0 * m),
            [by, bx],
            bx,
        );
    }

    /// `y += X·a`.
    fn block_gemv_acc(&mut self, x: &MultiVector, a: &[f64], y: &mut [f64]) {
        let _sp = obs::span(SpanKind::Combine);
        x.gemv_acc(a, y);
        let k = x.ncols() as f64;
        let (bx, by) = (self.buf_of_multi(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Vma, 2.0 * k, 8.0 * (k + 2.0), [bx, by], by);
    }

    /// `y -= X·a`.
    fn block_gemv_sub(&mut self, x: &MultiVector, a: &[f64], y: &mut [f64]) {
        let _sp = obs::span(SpanKind::Combine);
        x.gemv_sub(a, y);
        let k = x.ncols() as f64;
        let (bx, by) = (self.buf_of_multi(x), self.buf_of(y));
        self.charge_local_rw(LocalKind::Vma, 2.0 * k, 8.0 * (k + 2.0), [bx, by], by);
    }

    /// Fused conjugation sweep `dst = src[:, off..off+s] + prev·B` — the
    /// column copies and the recurrence LC in one pass over the rows.
    ///
    /// Numerically and trace-wise indistinguishable from the
    /// `copy_v`-per-column + [`Context::block_add_mul`] sequence it
    /// replaces: the fused kernel preserves each element's accumulation
    /// chain (bitwise-equal results) and the cost declarations below emit
    /// the exact legacy op sequence, so analyzers and Table-I accounting
    /// see no difference.
    fn block_combine(
        &mut self,
        dst: &mut MultiVector,
        src: &MultiVector,
        off: usize,
        prev: &MultiVector,
        b: &DenseMatrix,
    ) {
        let _sp = obs::span(SpanKind::Combine);
        dst.combine_window(src, off, prev, b);
        for j in 0..dst.ncols() {
            let (bs, bd) = (self.buf_of(src.col(off + j)), self.buf_of(dst.col(j)));
            self.charge_local_rw(LocalKind::Vma, 0.0, 16.0, [bs, BufId::ANON], bd);
        }
        let (k, m) = (prev.ncols() as f64, dst.ncols() as f64);
        let (bx, by) = (self.buf_of_multi(dst), self.buf_of_multi(prev));
        self.charge_local_rw(
            LocalKind::Vma,
            2.0 * k * m,
            8.0 * (k + 2.0 * m),
            [by, bx],
            bx,
        );
    }

    /// Fused basis shift `dst = src − X·a` — the power-list copy and the
    /// `gemv_sub` in one pass (see [`Context::block_combine`] for the
    /// trace-equivalence contract).
    fn block_gemv_sub_into(&mut self, x: &MultiVector, a: &[f64], src: &[f64], dst: &mut [f64]) {
        let _sp = obs::span(SpanKind::Combine);
        x.gemv_sub_into(a, src, dst);
        let (bs, bd) = (self.buf_of(src), self.buf_of(dst));
        self.charge_local_rw(LocalKind::Vma, 0.0, 16.0, [bs, BufId::ANON], bd);
        let k = x.ncols() as f64;
        let (bx, by) = (self.buf_of_multi(x), self.buf_of(dst));
        self.charge_local_rw(LocalKind::Vma, 2.0 * k, 8.0 * (k + 2.0), [bx, by], by);
    }

    /// Local Gram product `XᵀY`; combine entries with an allreduce.
    fn local_gram(&mut self, x: &MultiVector, y: &MultiVector) -> DenseMatrix {
        let _sp = obs::span(SpanKind::Gram);
        let (kx, ky) = (x.ncols() as f64, y.ncols() as f64);
        let (bx, by) = (self.buf_of_multi(x), self.buf_of_multi(y));
        self.charge_local_rw(
            LocalKind::Dot,
            2.0 * kx * ky,
            8.0 * (kx + ky),
            [bx, by],
            BufId::ANON,
        );
        x.gram(y)
    }

    /// Local Gram product between column ranges of two blocks.
    fn local_gram_range(
        &mut self,
        x: &MultiVector,
        xr: std::ops::Range<usize>,
        y: &MultiVector,
        yr: std::ops::Range<usize>,
    ) -> DenseMatrix {
        let _sp = obs::span(SpanKind::Gram);
        let (kx, ky) = (xr.len() as f64, yr.len() as f64);
        let (bx, by) = (self.buf_of_multi(x), self.buf_of_multi(y));
        self.charge_local_rw(
            LocalKind::Dot,
            2.0 * kx * ky,
            8.0 * (kx + ky),
            [bx, by],
            BufId::ANON,
        );
        x.gram_range(xr, y, yr)
    }

    /// Local block-vector products `Xᵀv`; combine with an allreduce.
    fn local_dot_vec(&mut self, x: &MultiVector, v: &[f64]) -> Vec<f64> {
        let _sp = obs::span(SpanKind::Gram);
        let k = x.ncols() as f64;
        let (bx, bv) = (self.buf_of_multi(x), self.buf_of(v));
        self.charge_local_rw(
            LocalKind::Dot,
            2.0 * k,
            8.0 * (k + 1.0),
            [bx, bv],
            BufId::ANON,
        );
        x.dot_vec(v)
    }
}

/// Numerical-invariant probe state (see [`SimCtx::enable_probes`]).
#[derive(Debug)]
struct ProbeState {
    /// Residual checks without improvement before the probe fires.
    window: usize,
    /// Best relative residual seen so far.
    best: f64,
    /// Consecutive checks without improvement.
    stale: usize,
}

/// The single-rank engine: real numerics over the global problem, optional
/// operation tracing for replay.
pub struct SimCtx<'a> {
    a: &'a CsrMatrix,
    pc: Box<dyn Operator + 'a>,
    counters: OpCounters,
    trace: Option<OpTrace>,
    inflight: HashMap<u64, Vec<f64>>,
    next_id: u64,
    /// Storage address → interned buffer id (tracing runs only).
    bufs: HashMap<usize, u64>,
    next_buf: u64,
    probes: Option<ProbeState>,
    /// Armed fault injector (`None` on clean runs — every hook below is a
    /// single `Option` check then).
    injector: Option<Injector>,
    /// Reductions whose completion was delayed: id → remaining backoff
    /// ticks before `try_wait` succeeds.
    delayed: HashMap<u64, u32>,
    /// Payload of the most recently completed reduction, kept only while a
    /// plan is armed — a duplicated completion delivers this stale value.
    last_completed: Option<Vec<f64>>,
    /// Pending rank-level machine events from the armed plan (fired events
    /// are removed; empty on clean runs, so every hook below early-returns).
    rank_events: Vec<RankEvent>,
    /// True iff the armed plan scheduled any rank events — persists after
    /// the events fire (unlike `rank_events`), gating the buddy-checkpoint
    /// cost on clean runs.
    rank_events_armed: bool,
    /// World size the rank events are modeled against.
    modeled_ranks: u32,
    /// Global collective counter (blocking allreduces + non-blocking posts)
    /// that rank events key on. Only advanced while events are pending.
    collective_idx: u64,
    /// Ranks that died and have not been rebuilt.
    dead: Vec<u32>,
    /// The failure currently poisoning the communicator (ULFM's
    /// `MPI_ERR_PROC_FAILED` state): sticky until `buddy_recover` repairs
    /// it.
    active_failure: Option<RankFailure>,
    /// The neighbor-held checkpoint of the iterate (most recent
    /// `buddy_put`).
    buddy_ckpt: Option<Vec<f64>>,
    /// Recovery-ladder codes in decision order (see
    /// [`Context::note_recovery_code`]).
    recovery_log: Vec<u64>,
}

impl<'a> SimCtx<'a> {
    /// A plain serial context: numerics only, no trace.
    pub fn serial(a: &'a CsrMatrix, pc: Box<dyn Operator + 'a>) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "solver context needs a square matrix");
        assert_eq!(pc.nrows(), a.nrows(), "preconditioner dimension mismatch");
        SimCtx {
            a,
            pc,
            counters: OpCounters::default(),
            trace: None,
            inflight: HashMap::new(),
            next_id: 0,
            bufs: HashMap::new(),
            next_buf: 1,
            probes: None,
            injector: None,
            delayed: HashMap::new(),
            last_completed: None,
            rank_events: Vec::new(),
            rank_events_armed: false,
            modeled_ranks: 8,
            collective_idx: 0,
            dead: Vec::new(),
            active_failure: None,
            buddy_ckpt: None,
            recovery_log: Vec::new(),
        }
    }

    /// A tracing context: `profile` describes how `a`'s work distributes
    /// over ranks for the replay engine.
    pub fn traced(a: &'a CsrMatrix, pc: Box<dyn Operator + 'a>, profile: MatrixProfile) -> Self {
        let mut ctx = SimCtx::serial(a, pc);
        let mut trace = OpTrace::new(a.nrows());
        trace.register_matrix(profile);
        ctx.trace = Some(trace);
        ctx
    }

    /// Takes the recorded trace (if tracing was enabled), leaving the
    /// context untraced.
    pub fn take_trace(&mut self) -> Option<OpTrace> {
        self.trace.take()
    }

    /// The matrix this context solves with.
    pub fn matrix(&self) -> &CsrMatrix {
        self.a
    }

    /// Name of the configured preconditioner.
    pub fn pc_name(&self) -> String {
        self.pc.name().to_string()
    }

    /// Turns on numerical-invariant probes at trace boundaries: values
    /// entering a reduction must be finite, reported residuals must be
    /// finite, and the residual must improve at least once every
    /// `stagnation_window` convergence checks. Opt-in because legitimate
    /// breakdown paths (the hybrid's restart trigger) push non-finite or
    /// stagnating residuals *by design* before they recover.
    ///
    /// # Panics
    /// Subsequent solver activity panics as soon as an invariant is violated.
    pub fn enable_probes(&mut self, stagnation_window: usize) {
        assert!(stagnation_window > 0, "stagnation window must be positive");
        self.probes = Some(ProbeState {
            window: stagnation_window,
            best: f64::INFINITY,
            stale: 0,
        });
    }

    /// Arms a deterministic fault-injection plan (see `pscg_fault`):
    /// subsequent kernel outputs, reduction contributions and reduction
    /// completions are subject to the plan's scheduled events. With no plan
    /// armed every hook is a single `Option` check and the engine is
    /// bitwise-identical to one built before fault injection existed.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.rank_events = plan.rank_events.clone();
        self.rank_events_armed = !plan.rank_events.is_empty();
        self.modeled_ranks = if plan.ranks == 0 { 8 } else { plan.ranks };
        self.injector = Some(Injector::new(plan));
    }

    /// Recovery-ladder codes noted so far, in decision order.
    pub fn recovery_log(&self) -> &[u64] {
        &self.recovery_log
    }

    /// Takes the recovery log, leaving it empty.
    pub fn take_recovery_log(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.recovery_log)
    }

    /// The faults applied so far (empty when no plan is armed).
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.injector.as_ref().map(|i| i.log()).unwrap_or(&[])
    }

    /// Takes the fault log, leaving it empty.
    pub fn take_fault_log(&mut self) -> Vec<FaultRecord> {
        self.injector
            .as_mut()
            .map(|i| i.take_log())
            .unwrap_or_default()
    }

    /// Applies any data fault the plan scheduled for this invocation of
    /// `site` to `out`, reporting it to telemetry when one fired.
    fn inject_data(&mut self, site: FaultSite, out: &mut [f64]) {
        let hit = match self.injector.as_mut() {
            Some(inj) => inj.corrupt(site, out),
            None => return,
        };
        if hit {
            self.note_fault(site);
        }
    }

    /// Reports one injected fault as a first-class telemetry event.
    fn note_fault(&mut self, site: FaultSite) {
        obs::metrics::note_fault_injected();
        obs::span::record_span(SpanKind::Fault, site.index() as u64, obs::now_ns(), 0);
    }

    /// Advances the global collective counter and fires any rank event the
    /// plan scheduled for this collective. Called at the head of every
    /// blocking allreduce and non-blocking post; with no pending rank
    /// events (clean runs and armed-but-empty plans alike) this is a single
    /// emptiness check and the engine stays bitwise-inert.
    fn on_collective(&mut self) {
        if self.rank_events.is_empty() {
            return;
        }
        let idx = self.collective_idx;
        self.collective_idx += 1;
        let mut i = 0;
        while i < self.rank_events.len() {
            if self.rank_events[i].nth != idx {
                i += 1;
                continue;
            }
            let ev = self.rank_events.remove(i);
            match ev.kind {
                RankFault::Slow { factor } => {
                    self.record(Op::RankSlow {
                        rank: ev.rank,
                        factor,
                    });
                }
                RankFault::Dead => {
                    self.record(Op::RankDead { rank: ev.rank });
                    if !self.dead.contains(&ev.rank) {
                        self.dead.push(ev.rank);
                    }
                    if self.active_failure.is_none() {
                        self.active_failure = Some(RankFailure {
                            rank: ev.rank,
                            at_collective: idx,
                        });
                    }
                }
            }
        }
    }

    /// The fault-free completion path shared by `wait` and `try_wait`.
    fn complete_wait(&mut self, h: ReduceHandle) -> Vec<f64> {
        let mut vals = self
            .inflight
            .remove(&h.id)
            .expect("wait on unknown or already-completed ReduceHandle"); // pscg-lint: allow(panic-in-hot-path, waiting on an unknown handle is a harness API-contract bug, not a runtime fault)
        if self.active_failure.is_some() {
            // A dead rank never contributes: the reduction can only
            // deliver poison, never a silently-wrong sum.
            vals.iter_mut().for_each(|v| *v = f64::NAN);
        }
        self.record(Op::ArWait { id: h.id });
        pscg_par::sync_trace::record(pscg_par::sync_trace::SyncEvent::ReduceComplete { id: h.id });
        obs::span::window_close(h.id);
        if self.injector.is_some() {
            self.last_completed = Some(vals.clone());
        }
        vals
    }

    fn record(&mut self, op: Op) {
        if let Some(t) = self.trace.as_mut() {
            t.push(op);
        }
    }

    /// Interns a storage address as a stable buffer identity. Only active
    /// while tracing; serial runs skip the bookkeeping entirely.
    ///
    /// Identity is the address of the first element, so a vector freed and
    /// another allocated at the same address would alias — the solvers
    /// allocate their working vectors once up front, which is also what the
    /// paper's MPI implementations do, so this cannot occur mid-solve.
    fn intern_ptr(&mut self, ptr: *const f64) -> BufId {
        if self.trace.is_none() {
            return BufId::ANON;
        }
        let fresh = self.next_buf;
        let id = *self.bufs.entry(ptr as usize).or_insert(fresh);
        if id == fresh {
            self.next_buf += 1;
        }
        BufId(id)
    }

    fn probe_reduction_input(&self, vals: &[f64]) {
        if self.probes.is_some() {
            assert!(
                vals.iter().all(|v| v.is_finite()),
                "probe: non-finite value entering an allreduce: {vals:?}"
            );
        }
    }

    fn charge_local_full(
        &mut self,
        kind: LocalKind,
        flops_per_row: f64,
        bytes_per_row: f64,
        reads: [BufId; 2],
        write: BufId,
    ) {
        let n = self.a.nrows() as f64;
        match kind {
            LocalKind::Vma => self.counters.vma_flops += flops_per_row * n,
            LocalKind::Dot => self.counters.dot_flops += flops_per_row * n,
        }
        self.record(Op::Local {
            kind,
            flops_per_row,
            bytes_per_row,
            reads,
            write,
        });
    }
}

impl Context for SimCtx<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn vec_len(&self) -> usize {
        self.a.nrows()
    }

    fn rank(&self) -> usize {
        0
    }

    fn nranks(&self) -> usize {
        1
    }

    fn matrix_nnz(&self) -> usize {
        self.a.nnz()
    }

    fn pc_cost_rates(&self) -> (f64, f64) {
        let c = self.pc.cost();
        (c.flops_per_row, c.bytes_per_row)
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        // The span arg carries the active format's code, so traces are
        // self-describing about which kernel body ran.
        let _sp = obs::span_arg(SpanKind::Spmv, pscg_sparse::spmv_format().to_code() as u64);
        self.a.spmv(x, y);
        self.inject_data(FaultSite::Spmv, y);
        self.counters.spmv += 1;
        let (bx, by) = (self.intern_ptr(x.as_ptr()), self.intern_ptr(y.as_ptr()));
        self.record(Op::Spmv {
            matrix: 0,
            x: bx,
            y: by,
        });
    }

    fn mpk(&mut self, pow: &mut MultiVector, from: usize, to: usize, sigma: f64) {
        if to <= from {
            return;
        }
        // The constituent products below call `a.spmv` directly (no trait
        // dispatch), so this is the only span recorded — no nested Spmv
        // spans that would double-count overlap credit.
        let _sp = obs::span_arg(SpanKind::Mpk, pscg_sparse::spmv_format().to_code() as u64);
        for j in from + 1..=to {
            {
                let (src, dst) = pow.col_pair_mut(j - 1, j);
                self.a.spmv(src, dst);
            }
            // pscg-lint: allow(float-eq, exact identity-scaling skip; sigma is a set parameter, not computed)
            if sigma != 1.0 {
                pscg_sparse::kernels::scale(sigma, pow.col_mut(j));
                self.charge_local(LocalKind::Vma, 1.0, 16.0);
            }
        }
        self.inject_data(FaultSite::Mpk, pow.col_mut(to));
        // Count the constituent products too, so OpCounters stay
        // comparable across engines (the thread engine's default falls
        // back to individual SpMVs).
        self.counters.spmv += (to - from) as u64;
        self.counters.mpk += 1;
        let block = if pow.ncols() == 0 {
            BufId::ANON
        } else {
            self.intern_ptr(pow.data().as_ptr())
        };
        self.record(Op::Mpk {
            matrix: 0,
            depth: to - from,
            block,
        });
    }

    fn pc_apply(&mut self, r: &[f64], u: &mut [f64]) {
        let _sp = obs::span(SpanKind::Pc);
        self.pc.apply(r, u);
        self.inject_data(FaultSite::Pc, u);
        self.counters.pc += 1;
        let c = self.pc.cost();
        let (br, bu) = (self.intern_ptr(r.as_ptr()), self.intern_ptr(u.as_ptr()));
        self.record(Op::Pc {
            matrix: 0,
            flops_per_row: c.flops_per_row,
            bytes_per_row: c.bytes_per_row,
            comm_rounds: c.comm_rounds,
            r: br,
            u: bu,
        });
    }

    fn pc_demote(&mut self) -> bool {
        // The IR keeps seeing the same logical Pc node: `pc_apply` records
        // the operator's *current* declared cost, so demotion shows up as
        // updated cost metadata, not a new node kind.
        self.pc.demote_precision()
    }

    fn pc_promote(&mut self) {
        self.pc.promote_precision();
    }

    fn pc_demoted(&self) -> bool {
        self.pc.is_demoted()
    }

    fn allreduce(&mut self, vals: &[f64]) -> Vec<f64> {
        let _sp = obs::span(SpanKind::Allreduce);
        self.on_collective();
        self.probe_reduction_input(vals);
        self.counters.blocking_allreduce += 1;
        self.counters.reduced_doubles += vals.len() as u64;
        self.record(Op::ArBlocking {
            doubles: vals.len(),
            comm: CommId::WORLD,
        });
        let mut out = vals.to_vec();
        self.inject_data(FaultSite::Reduce, &mut out);
        if self.active_failure.is_some() {
            // See `complete_wait`: a reduction over a failed communicator
            // delivers poison, never a silently partial sum.
            out.iter_mut().for_each(|v| *v = f64::NAN);
        }
        out
    }

    fn iallreduce(&mut self, vals: &[f64]) -> ReduceHandle {
        self.on_collective();
        self.probe_reduction_input(vals);
        let id = self.next_id;
        self.next_id += 1;
        self.counters.nonblocking_allreduce += 1;
        self.counters.reduced_doubles += vals.len() as u64;
        self.record(Op::ArPost {
            id,
            doubles: vals.len(),
            comm: CommId::WORLD,
        });
        let mut stored = vals.to_vec();
        self.inject_data(FaultSite::Reduce, &mut stored);
        self.inflight.insert(id, stored);
        pscg_par::sync_trace::record(pscg_par::sync_trace::SyncEvent::ReducePost { id });
        obs::span::window_open(id);
        ReduceHandle { id }
    }

    fn wait(&mut self, h: ReduceHandle) -> Vec<f64> {
        self.complete_wait(h)
    }

    fn try_wait(&mut self, h: ReduceHandle) -> WaitOutcome {
        if let Some(failure) = self.active_failure {
            // ULFM semantics: the wait raises the process failure instead
            // of a value. Retire the handle — the trace records a
            // non-retriable timeout so the overlap window closes and
            // replay's pending-set accounting stays exact.
            let id = h.id;
            self.inflight
                .remove(&id)
                .expect("wait on unknown or already-completed ReduceHandle"); // pscg-lint: allow(panic-in-hot-path, waiting on an unknown handle is a harness API-contract bug, not a runtime fault)
            self.delayed.remove(&id);
            self.record(Op::ArTimeout {
                id,
                retriable: false,
            });
            obs::span::window_close(id);
            return WaitOutcome::RankFailed(failure);
        }
        if self.injector.is_none() {
            return WaitOutcome::Done(self.complete_wait(h));
        }
        // A completion already marked delayed ticks down deterministically
        // without consulting the plan again.
        if let Some(ticks) = self.delayed.get_mut(&h.id) {
            if *ticks == 0 {
                self.delayed.remove(&h.id);
                return WaitOutcome::Done(self.complete_wait(h));
            }
            *ticks -= 1;
            let id = h.id;
            self.record(Op::ArTimeout {
                id,
                retriable: true,
            });
            return WaitOutcome::TimedOut {
                handle: Some(h),
                fault: ReduceTimeout {
                    id,
                    retriable: true,
                },
            };
        }
        // pscg-lint: allow(panic-in-hot-path, the injector is Some here; the None case returned early above)
        match self.injector.as_mut().unwrap().completion_fate() {
            None => WaitOutcome::Done(self.complete_wait(h)),
            Some(CompletionFault::Drop) => {
                // The reduction's values are lost. Retire the handle and
                // record a non-retriable timeout op — the schedule
                // analyzer sees the dropped completion as what it is (the
                // timeout closes the overlap window; a plain `ArWait`
                // would disguise the fault as a clean completion) — and
                // surface the timeout to the solver: never a hang, never
                // silent data.
                self.note_fault(FaultSite::Wait);
                let id = h.id;
                self.inflight
                    .remove(&id)
                    .expect("wait on unknown or already-completed ReduceHandle"); // pscg-lint: allow(panic-in-hot-path, waiting on an unknown handle is a harness API-contract bug, not a runtime fault)
                self.record(Op::ArTimeout {
                    id,
                    retriable: false,
                });
                obs::span::window_close(id);
                WaitOutcome::TimedOut {
                    handle: None,
                    fault: ReduceTimeout {
                        id,
                        retriable: false,
                    },
                }
            }
            Some(CompletionFault::Delay { ticks }) => {
                self.note_fault(FaultSite::Wait);
                if ticks == 0 {
                    return WaitOutcome::Done(self.complete_wait(h));
                }
                self.delayed.insert(h.id, ticks - 1);
                let id = h.id;
                self.record(Op::ArTimeout {
                    id,
                    retriable: true,
                });
                WaitOutcome::TimedOut {
                    handle: Some(h),
                    fault: ReduceTimeout {
                        id,
                        retriable: true,
                    },
                }
            }
            Some(CompletionFault::Duplicate) => {
                // A stale (duplicated) completion delivers the *previous*
                // reduction's payload — a silent data fault the drift
                // probe, not the wait path, must catch.
                self.note_fault(FaultSite::Wait);
                let stale = self.last_completed.clone();
                let correct = self.complete_wait(h);
                match stale {
                    Some(s) if s.len() == correct.len() => WaitOutcome::Done(s),
                    _ => WaitOutcome::Done(correct),
                }
            }
        }
    }

    fn peek_pending(&mut self, h: &ReduceHandle) -> Vec<f64> {
        let vals = self
            .inflight
            .get(&h.id)
            .expect("peek of unknown or already-completed ReduceHandle") // pscg-lint: allow(panic-in-hot-path, peeking an unknown handle is a harness API-contract bug, not a runtime fault)
            .clone();
        self.record(Op::RedRead { id: h.id });
        vals
    }

    fn rank_failure(&self) -> Option<RankFailure> {
        self.active_failure
    }

    fn buddy_put(&mut self, x: &[f64]) {
        // Only worth modeling when the plan can actually kill a rank; on
        // every other run the checkpoint would be dead weight.
        if self.rank_events_armed {
            self.buddy_ckpt = Some(x.to_vec());
        }
    }

    fn buddy_recover(&mut self) -> BuddyRecovery {
        let Some(failure) = self.active_failure else {
            return BuddyRecovery::NoFailure;
        };
        let buddy = (failure.rank + 1) % self.modeled_ranks;
        if self.dead.contains(&buddy) {
            return BuddyRecovery::Lost {
                rank: failure.rank,
                buddy,
            };
        }
        // The buddy holds the checkpoint: rebuild the partition, shrink
        // the failure out of the communicator and resume.
        self.active_failure = None;
        self.dead.retain(|&r| r != failure.rank);
        BuddyRecovery::Restored {
            rank: failure.rank,
            x: self.buddy_ckpt.clone(),
        }
    }

    fn note_recovery_code(&mut self, code: u64) {
        self.recovery_log.push(code);
    }

    fn buf_of(&mut self, v: &[f64]) -> BufId {
        self.intern_ptr(v.as_ptr())
    }

    fn buf_of_multi(&mut self, m: &MultiVector) -> BufId {
        if m.ncols() == 0 {
            BufId::ANON
        } else {
            self.intern_ptr(m.data().as_ptr())
        }
    }

    fn charge_local(&mut self, kind: LocalKind, flops_per_row: f64, bytes_per_row: f64) {
        self.charge_local_full(
            kind,
            flops_per_row,
            bytes_per_row,
            [BufId::ANON; 2],
            BufId::ANON,
        );
    }

    fn charge_local_rw(
        &mut self,
        kind: LocalKind,
        flops_per_row: f64,
        bytes_per_row: f64,
        reads: [BufId; 2],
        write: BufId,
    ) {
        self.charge_local_full(kind, flops_per_row, bytes_per_row, reads, write);
    }

    fn charge_scalar(&mut self, flops: f64) {
        self.counters.scalar_flops += flops;
        self.record(Op::Scalar { flops });
    }

    fn note_residual(&mut self, relres: f64) {
        if let Some(p) = self.probes.as_mut() {
            assert!(relres.is_finite(), "probe: non-finite residual {relres}");
            if relres < p.best {
                p.best = relres;
                p.stale = 0;
            } else {
                p.stale += 1;
                assert!(
                    p.stale < p.window,
                    "probe: residual stagnated for {} consecutive checks (best {:.3e})",
                    p.window,
                    p.best
                );
            }
        }
        self.record(Op::ResCheck { relres });
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut OpCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Layout;
    use pscg_sparse::op::IdentityOp;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn ctx_pair() -> (CsrMatrix, MatrixProfile) {
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let nnz = a.nnz();
        (a, MatrixProfile::stencil3d(5, 5, 5, 1, nnz, Layout::Box))
    }

    #[test]
    fn serial_ctx_runs_kernels_and_counts() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        let x = ctx.alloc_vec();
        let mut y = ctx.alloc_vec();
        ctx.spmv(&x, &mut y);
        ctx.pc_apply(&x, &mut y);
        let d = ctx.local_dot(&x, &y);
        let g = ctx.allreduce(&[d]);
        assert_eq!(g, vec![0.0]);
        assert_eq!(ctx.counters().spmv, 1);
        assert_eq!(ctx.counters().pc, 1);
        assert_eq!(ctx.counters().blocking_allreduce, 1);
        assert_eq!(ctx.counters().vectors_allocated, 2);
        assert!(ctx.counters().dot_flops > 0.0);
        assert!(ctx.take_trace().is_none());
    }

    #[test]
    fn traced_ctx_records_ops_in_order() {
        let (a, prof) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::traced(&a, Box::new(IdentityOp::new(n)), prof);
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        ctx.spmv(&x, &mut y);
        let h = ctx.iallreduce(&[1.0, 2.0]);
        ctx.spmv(&x, &mut y);
        let got = ctx.wait(h);
        assert_eq!(got, vec![1.0, 2.0]);
        ctx.note_residual(0.5);
        let trace = ctx.take_trace().unwrap();
        assert_eq!(trace.comm_counts(), (2, 0, 0, 1));
        assert!(matches!(trace.ops.last(), Some(Op::ResCheck { .. })));
    }

    #[test]
    fn iallreduce_returns_identity_sum_on_one_rank() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        let h = ctx.iallreduce(&[3.5, -1.0]);
        assert_eq!(ctx.wait(h), vec![3.5, -1.0]);
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn double_wait_panics() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        let h = ctx.iallreduce(&[1.0]);
        let id = h.id;
        ctx.wait(h);
        ctx.wait(ReduceHandle { id });
    }

    #[test]
    fn tracing_ctx_interns_buffer_identities() {
        let (a, prof) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::traced(&a, Box::new(IdentityOp::new(n)), prof);
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        ctx.spmv(&x, &mut y);
        ctx.spmv(&y.clone(), &mut y);
        let bx = ctx.buf_of(&x);
        let by = ctx.buf_of(&y);
        assert!(bx.is_tracked() && by.is_tracked() && bx != by);
        let trace = ctx.take_trace().unwrap();
        match trace.ops[0] {
            Op::Spmv { x: ox, y: oy, .. } => {
                assert_eq!(ox, bx);
                assert_eq!(oy, by);
            }
            ref other => panic!("expected Spmv, got {other:?}"),
        }
        // Serial (untraced) contexts skip interning entirely.
        let mut serial = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        assert_eq!(serial.buf_of(&x), BufId::ANON);
    }

    #[test]
    fn peek_pending_returns_local_values_and_records() {
        let (a, prof) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::traced(&a, Box::new(IdentityOp::new(n)), prof);
        let h = ctx.iallreduce(&[2.0, 4.0]);
        assert_eq!(ctx.peek_pending(&h), vec![2.0, 4.0]);
        assert_eq!(ctx.wait(h), vec![2.0, 4.0]);
        let trace = ctx.take_trace().unwrap();
        assert_eq!(
            trace.ops,
            vec![Op::post(0, 2), Op::RedRead { id: 0 }, Op::wait(0)]
        );
    }

    #[test]
    #[should_panic(expected = "non-finite value entering an allreduce")]
    fn probe_rejects_nan_reduction_input() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.enable_probes(100);
        ctx.allreduce(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "residual stagnated")]
    fn probe_rejects_stagnation() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.enable_probes(3);
        ctx.note_residual(1.0);
        for _ in 0..4 {
            ctx.note_residual(1.0);
        }
    }

    #[test]
    fn probe_allows_slow_but_real_progress() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.enable_probes(3);
        let mut r = 1.0;
        for _ in 0..20 {
            ctx.note_residual(r);
            ctx.note_residual(r); // one stale check between improvements
            r *= 0.9;
        }
    }

    #[test]
    fn armed_empty_plan_changes_nothing() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let x = vec![1.0; n];
        let mut y_clean = vec![0.0; n];
        let mut y_armed = vec![0.0; n];

        let mut clean = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        clean.spmv(&x, &mut y_clean);
        let h = clean.iallreduce(&[1.5, 2.5]);
        let r_clean = match clean.try_wait(h) {
            WaitOutcome::Done(v) => v,
            other => panic!("clean try_wait must complete, got {other:?}"),
        };

        let mut armed = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        armed.arm_faults(FaultPlan::new(42));
        armed.spmv(&x, &mut y_armed);
        let h = armed.iallreduce(&[1.5, 2.5]);
        let r_armed = match armed.try_wait(h) {
            WaitOutcome::Done(v) => v,
            other => panic!("empty plan must complete, got {other:?}"),
        };

        assert_eq!(y_clean, y_armed, "empty plan must not touch kernels");
        assert_eq!(r_clean, r_armed);
        assert!(armed.fault_log().is_empty());
    }

    #[test]
    fn spmv_bitflip_fires_on_the_scheduled_call() {
        use pscg_fault::FaultAction;
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(7).with(
            FaultSite::Spmv,
            1,
            FaultAction::BitFlip { bit: 51 },
        ));
        let x = vec![1.0; n];
        let mut y0 = vec![0.0; n];
        let mut y1 = vec![0.0; n];
        ctx.spmv(&x, &mut y0); // call 0: clean
        ctx.spmv(&x, &mut y1); // call 1: one element flipped
        let mut reference = vec![0.0; n];
        a.spmv(&x, &mut reference);
        assert_eq!(y0, reference);
        let diffs = y1
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(diffs, 1, "exactly one element corrupted");
        assert_eq!(ctx.fault_log().len(), 1);
    }

    #[test]
    fn dropped_completion_times_out_instead_of_hanging() {
        use pscg_fault::FaultAction;
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(1).with(FaultSite::Wait, 0, FaultAction::Drop));
        let h = ctx.iallreduce(&[2.0]);
        match ctx.try_wait(h) {
            WaitOutcome::TimedOut { handle, fault } => {
                assert!(handle.is_none(), "dropped values cannot be re-waited");
                assert!(!fault.retriable);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        // The handle is retired: a fresh reduction works normally.
        let h = ctx.iallreduce(&[3.0]);
        assert!(matches!(ctx.try_wait(h), WaitOutcome::Done(v) if v == vec![3.0]));
    }

    #[test]
    fn delayed_completion_retries_then_completes() {
        use pscg_fault::FaultAction;
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(1).with(FaultSite::Wait, 0, FaultAction::Delay { ticks: 2 }));
        let mut h = ctx.iallreduce(&[4.0]);
        let mut timeouts = 0;
        let got = loop {
            match ctx.try_wait(h) {
                WaitOutcome::Done(v) => break v,
                WaitOutcome::TimedOut { handle, fault } => {
                    assert!(fault.retriable);
                    timeouts += 1;
                    h = handle.expect("delayed handle stays waitable");
                }
                WaitOutcome::RankFailed(f) => panic!("no rank events armed, got {f}"),
            }
        };
        assert_eq!(got, vec![4.0]);
        assert_eq!(timeouts, 2, "two backoff ticks before completion");
    }

    #[test]
    fn duplicated_completion_delivers_the_stale_payload() {
        use pscg_fault::FaultAction;
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(1).with(FaultSite::Wait, 1, FaultAction::Duplicate));
        let h = ctx.iallreduce(&[1.0, 2.0]);
        assert!(matches!(ctx.try_wait(h), WaitOutcome::Done(v) if v == vec![1.0, 2.0]));
        let h = ctx.iallreduce(&[9.0, 9.0]);
        match ctx.try_wait(h) {
            WaitOutcome::Done(v) => assert_eq!(v, vec![1.0, 2.0], "stale payload delivered"),
            other => panic!("duplicate completes (with stale data), got {other:?}"),
        }
    }

    #[test]
    fn rank_death_fails_collectives_until_buddy_recovery() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(3).with_ranks(8).with_rank_dead(3, 1));

        // Collective 0: clean.
        assert!(ctx.rank_failure().is_none());
        assert_eq!(ctx.allreduce(&[2.0]), vec![2.0]);
        ctx.buddy_put(&[7.0; 4]);

        // Collective 1: rank 3 dies. Blocking reductions poison...
        let poisoned = ctx.allreduce(&[2.0]);
        assert!(poisoned[0].is_nan(), "dead-rank reduction must poison");
        let failure = ctx.rank_failure().expect("failure is sticky");
        assert_eq!((failure.rank, failure.at_collective), (3, 1));

        // ...and a posted reduction raises the failure at the wait,
        // retiring its handle.
        let h = ctx.iallreduce(&[1.0]);
        match ctx.try_wait(h) {
            WaitOutcome::RankFailed(f) => assert_eq!(f.rank, 3),
            other => panic!("expected RankFailed, got {other:?}"),
        }

        // The buddy (rank 4) survives: recovery restores the checkpoint
        // and the communicator works again.
        match ctx.buddy_recover() {
            BuddyRecovery::Restored { rank, x } => {
                assert_eq!(rank, 3);
                assert_eq!(x.as_deref(), Some(&[7.0; 4][..]));
            }
            other => panic!("expected Restored, got {other:?}"),
        }
        assert!(ctx.rank_failure().is_none());
        assert_eq!(ctx.allreduce(&[5.0]), vec![5.0]);
    }

    #[test]
    fn buddy_death_makes_the_partition_unrecoverable() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(
            FaultPlan::new(3)
                .with_ranks(8)
                .with_rank_dead(3, 0)
                .with_rank_dead(4, 0),
        );
        let _ = ctx.allreduce(&[1.0]); // both die at collective 0
        match ctx.buddy_recover() {
            BuddyRecovery::Lost { rank, buddy } => {
                assert_eq!((rank, buddy), (3, 4));
            }
            other => panic!("expected Lost, got {other:?}"),
        }
        // The failure stays active: collectives keep failing explicitly.
        assert!(ctx.rank_failure().is_some());
    }

    #[test]
    fn death_before_first_checkpoint_restores_without_an_iterate() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(3).with_ranks(4).with_rank_dead(2, 0));
        let _ = ctx.allreduce(&[1.0]);
        match ctx.buddy_recover() {
            BuddyRecovery::Restored { rank: 2, x: None } => {}
            other => panic!("expected Restored without iterate, got {other:?}"),
        }
    }

    #[test]
    fn straggler_event_records_a_trace_marker_only() {
        let (a, prof) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::traced(&a, Box::new(IdentityOp::new(n)), prof);
        ctx.arm_faults(FaultPlan::new(3).with_ranks(8).with_rank_slow(5, 4.0, 1));
        assert_eq!(ctx.allreduce(&[1.0]), vec![1.0]);
        assert_eq!(
            ctx.allreduce(&[2.0]),
            vec![2.0],
            "stragglers never corrupt data"
        );
        assert!(ctx.rank_failure().is_none());
        let trace = ctx.take_trace().unwrap();
        let slow: Vec<_> = trace
            .ops
            .iter()
            .filter(|op| matches!(op, Op::RankSlow { rank: 5, .. }))
            .collect();
        assert_eq!(slow.len(), 1);
    }

    #[test]
    fn armed_rank_free_plan_keeps_the_collective_path_inert() {
        // A plan with data faults but no rank events must never advance the
        // collective counter or store buddy checkpoints.
        use pscg_fault::FaultAction;
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        ctx.arm_faults(FaultPlan::new(9).with(FaultSite::Pc, 99, FaultAction::Nan));
        for _ in 0..4 {
            let _ = ctx.allreduce(&[1.0]);
        }
        ctx.buddy_put(&[1.0]);
        assert_eq!(
            ctx.collective_idx, 0,
            "counter gated on pending rank events"
        );
        assert!(ctx.buddy_ckpt.is_none(), "checkpoints gated on rank events");
        assert!(ctx.rank_failure().is_none());
        assert!(ctx.recovery_log().is_empty());
    }

    #[test]
    fn helper_ops_charge_flops() {
        let (a, _) = ctx_pair();
        let n = a.nrows();
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(n)));
        let x = vec![1.0; n];
        let mut y = vec![2.0; n];
        ctx.axpy(0.5, &x, &mut y);
        assert_eq!(ctx.counters().vma_flops, 2.0 * n as f64);
        let mut q = ctx.alloc_multi(3);
        let p = ctx.alloc_multi(3);
        let b = DenseMatrix::identity(3);
        ctx.block_add_mul(&mut q, &p, &b);
        assert_eq!(ctx.counters().vma_flops, 2.0 * n as f64 + 18.0 * n as f64);
        let gm = ctx.local_gram(&q, &p);
        assert_eq!(gm.nrows(), 3);
        assert!(ctx.counters().dot_flops > 0.0);
    }
}

//! Allreduce cost models.
//!
//! The paper's central quantity is `G`, "the time taken for global
//! allreduce" (Table I), which grows with core count and eventually exceeds
//! the work available to hide it. We model the two algorithms MPI
//! implementations use for small reductions:
//!
//! * **Recursive doubling** — `⌈log₂ p⌉` rounds of `(α + m·β + m·γ)`;
//! * **Two-level** — reduce inside each node over shared memory, recursive
//!   doubling across nodes, then an intra-node broadcast. This is what
//!   cray-mpich does on the XC40 and what makes `G` scale with
//!   `log₂(nodes)` rather than `log₂(cores)`.
//!
//! The messages here are tiny (2s … ~2s²+2s+3 doubles), so the latency terms
//! dominate; the `β`/`γ` terms exist so that deliberately large reductions
//! are still costed sanely.

use crate::machine::Machine;

/// Identity of a communicator a collective runs on.
///
/// The simulator currently issues every reduction on [`CommId::WORLD`], but
/// the trace records the communicator explicitly so the schedule analyzer
/// can express (and future multi-communicator methods can exercise) the MPI
/// rule that two collectives on the *same* communicator must be posted in
/// the same order on every rank and may not race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommId(pub u32);

impl CommId {
    /// The world communicator (all ranks), MPI_COMM_WORLD.
    pub const WORLD: CommId = CommId(0);
}

/// A non-blocking reduction completion that did not arrive: the faulted
/// equivalent of an `MPI_Wait` that gives up instead of hanging.
///
/// Produced by [`Context::try_wait`](crate::Context::try_wait) when a fault
/// plan delays or drops a completion. `retriable` distinguishes a *delayed*
/// completion (the handle is still live; waiting again can succeed) from a
/// *dropped* one (the posted values are gone; the caller must re-post its
/// contribution to recover).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceTimeout {
    /// Reduction id of the timed-out completion.
    pub id: u64,
    /// True when the same handle may be waited on again.
    pub retriable: bool,
}

impl std::fmt::Display for ReduceTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allreduce {} timed out ({})",
            self.id,
            if self.retriable {
                "delayed; retriable"
            } else {
                "dropped; values lost"
            }
        )
    }
}

impl std::error::Error for ReduceTimeout {}

/// A collective failed because a modeled peer rank died: the distributed
/// equivalent of `MPI_ERR_PROC_FAILED` from a ULFM-style runtime. Unlike a
/// [`ReduceTimeout`] the handle is gone for good — retrying or re-posting
/// on the same communicator can never succeed; recovery means rebuilding
/// the lost partition (buddy checkpoint) and resuming on the survivor
/// communicator, or escalating a typed error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFailure {
    /// The dead rank.
    pub rank: u32,
    /// 0-based global collective index at which the death activated.
    pub at_collective: u64,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} died at collective {}",
            self.rank, self.at_collective
        )
    }
}

impl std::error::Error for RankFailure {}

/// Why a fallible reduction completion did not deliver a value: a bounded
/// timeout (retriable by the caller's retry budget) or a dead peer rank
/// (never retriable on the same communicator).
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// The completion timed out (delayed or dropped); see [`ReduceTimeout`].
    Timeout(ReduceTimeout),
    /// A modeled peer rank died; see [`RankFailure`].
    RankFailed(RankFailure),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout(t) => t.fmt(f),
            CommError::RankFailed(r) => r.fmt(f),
        }
    }
}

impl std::error::Error for CommError {}

/// Outcome of a fallible wait on a posted reduction
/// ([`Context::try_wait`](crate::Context::try_wait)).
#[derive(Debug)]
pub enum WaitOutcome {
    /// The completion arrived; these are the global sums.
    Done(Vec<f64>),
    /// The completion timed out. `handle` is `Some` when the reduction is
    /// still in flight (delayed — wait again), `None` when it was dropped
    /// (re-post to recover).
    TimedOut {
        /// The still-live handle of a delayed reduction.
        handle: Option<crate::ReduceHandle>,
        /// Why and whether retrying the same handle can succeed.
        fault: ReduceTimeout,
    },
    /// The collective failed because a peer rank died. The handle has been
    /// retired; no payload will ever arrive on this communicator.
    RankFailed(RankFailure),
}

/// A violation of non-blocking collective discipline detected while feeding
/// a trace's collectives through an [`InflightTracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// Two posts with the same handle without an intervening wait.
    DoublePost {
        /// Offending handle.
        id: u64,
        /// Trace index of the second post.
        at: usize,
    },
    /// A wait for a handle that was never posted (or already completed).
    WaitWithoutPost {
        /// Offending handle.
        id: u64,
        /// Trace index of the wait.
        at: usize,
    },
    /// A non-blocking collective posted but never waited on.
    NeverWaited {
        /// Leaked handle.
        id: u64,
        /// Trace index of the post.
        posted_at: usize,
    },
    /// A blocking collective issued on a communicator with a non-blocking
    /// collective still in flight: MPI orders collectives per communicator,
    /// so the blocking call cannot overtake the pending one — the "overlap"
    /// the schedule promises is silently serialized.
    BlockingOverInflight {
        /// Handle of the pending non-blocking collective.
        pending: u64,
        /// Trace index of the blocking call.
        at: usize,
    },
    /// Two non-blocking collectives in flight simultaneously on the same
    /// communicator. Legal MPI, but the second queues behind the first, so
    /// a schedule relying on both progressing concurrently is wrong.
    ConcurrentOnComm {
        /// Handle posted first.
        first: u64,
        /// Handle posted while `first` was still pending.
        second: u64,
        /// Trace index of the second post.
        at: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::DoublePost { id, at } => {
                write!(f, "handle {id} posted twice (second post at op {at})")
            }
            ScheduleViolation::WaitWithoutPost { id, at } => {
                write!(f, "wait at op {at} for handle {id} that is not in flight")
            }
            ScheduleViolation::NeverWaited { id, posted_at } => {
                write!(
                    f,
                    "allreduce {id} posted at op {posted_at} but never waited"
                )
            }
            ScheduleViolation::BlockingOverInflight { pending, at } => write!(
                f,
                "blocking allreduce at op {at} while allreduce {pending} is in flight \
                 on the same communicator"
            ),
            ScheduleViolation::ConcurrentOnComm { first, second, at } => write!(
                f,
                "allreduce {second} posted at op {at} while {first} is still in flight \
                 on the same communicator"
            ),
        }
    }
}

/// Tracks the set of posted-but-unwaited non-blocking collectives per
/// communicator, reporting discipline violations as they appear.
///
/// This is the communication half of the happens-before bookkeeping: the
/// schedule analyzer feeds every [`crate::Op::ArPost`]/[`crate::Op::ArWait`]/
/// [`crate::Op::ArBlocking`] of a trace through one tracker and collects the
/// violations; [`InflightTracker::finish`] flushes the leaked handles.
#[derive(Debug, Default)]
pub struct InflightTracker {
    /// `(handle, communicator, post index)` for each pending collective.
    open: Vec<(u64, CommId, usize)>,
}

impl InflightTracker {
    /// A tracker with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles currently in flight, in post order.
    pub fn pending(&self) -> impl Iterator<Item = u64> + '_ {
        self.open.iter().map(|&(id, _, _)| id)
    }

    /// Records a non-blocking post at trace index `at`.
    pub fn post(&mut self, id: u64, comm: CommId, at: usize) -> Vec<ScheduleViolation> {
        let mut v = Vec::new();
        if self.open.iter().any(|&(oid, _, _)| oid == id) {
            v.push(ScheduleViolation::DoublePost { id, at });
        }
        if let Some(&(first, _, _)) = self.open.iter().find(|&&(_, c, _)| c == comm) {
            v.push(ScheduleViolation::ConcurrentOnComm {
                first,
                second: id,
                at,
            });
        }
        self.open.push((id, comm, at));
        v
    }

    /// Records the completion wait for `id` at trace index `at`.
    pub fn wait(&mut self, id: u64, at: usize) -> Vec<ScheduleViolation> {
        match self.open.iter().position(|&(oid, _, _)| oid == id) {
            Some(k) => {
                self.open.remove(k);
                Vec::new()
            }
            None => vec![ScheduleViolation::WaitWithoutPost { id, at }],
        }
    }

    /// Records a blocking collective on `comm` at trace index `at`.
    pub fn blocking(&mut self, comm: CommId, at: usize) -> Vec<ScheduleViolation> {
        self.open
            .iter()
            .filter(|&&(_, c, _)| c == comm)
            .map(|&(pending, _, _)| ScheduleViolation::BlockingOverInflight { pending, at })
            .collect()
    }

    /// Flushes the tracker at end of trace: every still-open handle leaks.
    pub fn finish(&mut self) -> Vec<ScheduleViolation> {
        self.open
            .drain(..)
            .map(|(id, _, posted_at)| ScheduleViolation::NeverWaited { id, posted_at })
            .collect()
    }
}

/// Which collective algorithm to model, with its constants.
#[derive(Debug, Clone, PartialEq)]
pub enum AllreduceModel {
    /// Free communication (tests).
    Zero,
    /// Flat recursive doubling over all ranks.
    RecursiveDoubling {
        /// Per-round latency, seconds.
        alpha: f64,
        /// Per-byte transfer cost, seconds.
        beta: f64,
        /// Per-byte reduction (combine) cost, seconds.
        gamma: f64,
    },
    /// Shared-memory reduce + inter-node recursive doubling + broadcast.
    TwoLevel {
        /// Per-round latency of the intra-node (shared-memory) phase.
        alpha_shm: f64,
        /// Per-round latency of the inter-node phase.
        alpha_net: f64,
        /// Per-byte transfer cost of the inter-node phase.
        beta: f64,
        /// Per-byte reduction cost.
        gamma: f64,
    },
}

impl AllreduceModel {
    /// The free model.
    pub fn zero() -> Self {
        AllreduceModel::Zero
    }

    /// Recursive doubling with Aries-class constants.
    pub fn recursive_doubling_default() -> Self {
        AllreduceModel::RecursiveDoubling {
            alpha: 1.8e-6,
            beta: 1.0 / 8.0e9,
            gamma: 2.5e-10,
        }
    }

    /// Two-level with Aries-class constants (the SahasraT default).
    pub fn two_level_default() -> Self {
        AllreduceModel::TwoLevel {
            alpha_shm: 0.4e-6,
            alpha_net: 2.2e-6,
            beta: 1.0 / 8.0e9,
            gamma: 2.5e-10,
        }
    }

    /// Models one allreduce over `p` ranks of `doubles` f64 values.
    pub fn time(&self, machine: &Machine, p: usize, doubles: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = (doubles * 8) as f64;
        match *self {
            AllreduceModel::Zero => 0.0,
            AllreduceModel::RecursiveDoubling { alpha, beta, gamma } => {
                let rounds = (p as f64).log2().ceil();
                rounds * (alpha + bytes * (beta + gamma))
            }
            AllreduceModel::TwoLevel {
                alpha_shm,
                alpha_net,
                beta,
                gamma,
            } => {
                let cores = machine.cores_per_node.min(p).max(1);
                let nodes = p.div_ceil(machine.cores_per_node).max(1);
                // Intra-node tree reduce + final broadcast.
                let shm_rounds = (cores as f64).log2().ceil();
                let shm = 2.0 * shm_rounds * (alpha_shm + bytes * gamma);
                // Inter-node recursive doubling.
                let net = if nodes > 1 {
                    (nodes as f64).log2().ceil() * (alpha_net + bytes * (beta + gamma))
                } else {
                    0.0
                };
                shm + net
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::sahasrat()
    }

    #[test]
    fn single_rank_is_free() {
        let m = machine();
        for model in [
            AllreduceModel::zero(),
            AllreduceModel::recursive_doubling_default(),
            AllreduceModel::two_level_default(),
        ] {
            assert_eq!(model.time(&m, 1, 64), 0.0);
        }
    }

    #[test]
    fn recursive_doubling_is_logarithmic() {
        let m = machine();
        let model = AllreduceModel::recursive_doubling_default();
        let t64 = model.time(&m, 64, 8);
        let t4096 = model.time(&m, 4096, 8);
        // 6 rounds vs 12 rounds.
        assert!((t4096 / t64 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_scales_with_nodes_not_cores() {
        let m = machine();
        let model = AllreduceModel::two_level_default();
        // 24 ranks = 1 node: no inter-node phase.
        let one_node = model.time(&m, 24, 8);
        let two_nodes = model.time(&m, 48, 8);
        assert!(two_nodes > one_node);
        // Within one node, adding ranks only grows the shm tree.
        let t12 = model.time(&m, 12, 8);
        assert!(t12 <= one_node);
    }

    #[test]
    fn tracker_accepts_disciplined_sequences() {
        let mut t = InflightTracker::new();
        assert!(t.post(0, CommId::WORLD, 0).is_empty());
        assert!(t.wait(0, 3).is_empty());
        assert!(t.post(1, CommId::WORLD, 4).is_empty());
        assert!(t.wait(1, 5).is_empty());
        assert!(t.blocking(CommId::WORLD, 6).is_empty());
        assert!(t.finish().is_empty());
    }

    #[test]
    fn tracker_flags_each_violation_class() {
        let mut t = InflightTracker::new();
        t.post(0, CommId::WORLD, 0);
        assert_eq!(
            t.post(0, CommId::WORLD, 1),
            vec![
                ScheduleViolation::DoublePost { id: 0, at: 1 },
                ScheduleViolation::ConcurrentOnComm {
                    first: 0,
                    second: 0,
                    at: 1
                }
            ]
        );
        assert_eq!(
            t.blocking(CommId::WORLD, 2),
            vec![
                ScheduleViolation::BlockingOverInflight { pending: 0, at: 2 },
                ScheduleViolation::BlockingOverInflight { pending: 0, at: 2 }
            ]
        );
        assert_eq!(
            t.wait(7, 3),
            vec![ScheduleViolation::WaitWithoutPost { id: 7, at: 3 }]
        );
        // Different communicators do not conflict.
        assert!(t.post(9, CommId(1), 4).is_empty());
        let leaks = t.finish();
        assert_eq!(leaks.len(), 3);
        assert!(leaks.contains(&ScheduleViolation::NeverWaited {
            id: 9,
            posted_at: 4
        }));
    }

    #[test]
    fn message_size_matters_for_large_payloads() {
        let m = machine();
        let model = AllreduceModel::two_level_default();
        let small = model.time(&m, 2880, 8);
        let large = model.time(&m, 2880, 1_000_000);
        assert!(large > 2.0 * small);
    }
}

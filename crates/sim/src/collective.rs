//! Allreduce cost models.
//!
//! The paper's central quantity is `G`, "the time taken for global
//! allreduce" (Table I), which grows with core count and eventually exceeds
//! the work available to hide it. We model the two algorithms MPI
//! implementations use for small reductions:
//!
//! * **Recursive doubling** — `⌈log₂ p⌉` rounds of `(α + m·β + m·γ)`;
//! * **Two-level** — reduce inside each node over shared memory, recursive
//!   doubling across nodes, then an intra-node broadcast. This is what
//!   cray-mpich does on the XC40 and what makes `G` scale with
//!   `log₂(nodes)` rather than `log₂(cores)`.
//!
//! The messages here are tiny (2s … ~2s²+2s+3 doubles), so the latency terms
//! dominate; the `β`/`γ` terms exist so that deliberately large reductions
//! are still costed sanely.

use crate::machine::Machine;

/// Which collective algorithm to model, with its constants.
#[derive(Debug, Clone, PartialEq)]
pub enum AllreduceModel {
    /// Free communication (tests).
    Zero,
    /// Flat recursive doubling over all ranks.
    RecursiveDoubling {
        /// Per-round latency, seconds.
        alpha: f64,
        /// Per-byte transfer cost, seconds.
        beta: f64,
        /// Per-byte reduction (combine) cost, seconds.
        gamma: f64,
    },
    /// Shared-memory reduce + inter-node recursive doubling + broadcast.
    TwoLevel {
        /// Per-round latency of the intra-node (shared-memory) phase.
        alpha_shm: f64,
        /// Per-round latency of the inter-node phase.
        alpha_net: f64,
        /// Per-byte transfer cost of the inter-node phase.
        beta: f64,
        /// Per-byte reduction cost.
        gamma: f64,
    },
}

impl AllreduceModel {
    /// The free model.
    pub fn zero() -> Self {
        AllreduceModel::Zero
    }

    /// Recursive doubling with Aries-class constants.
    pub fn recursive_doubling_default() -> Self {
        AllreduceModel::RecursiveDoubling {
            alpha: 1.8e-6,
            beta: 1.0 / 8.0e9,
            gamma: 2.5e-10,
        }
    }

    /// Two-level with Aries-class constants (the SahasraT default).
    pub fn two_level_default() -> Self {
        AllreduceModel::TwoLevel {
            alpha_shm: 0.4e-6,
            alpha_net: 2.2e-6,
            beta: 1.0 / 8.0e9,
            gamma: 2.5e-10,
        }
    }

    /// Models one allreduce over `p` ranks of `doubles` f64 values.
    pub fn time(&self, machine: &Machine, p: usize, doubles: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = (doubles * 8) as f64;
        match *self {
            AllreduceModel::Zero => 0.0,
            AllreduceModel::RecursiveDoubling { alpha, beta, gamma } => {
                let rounds = (p as f64).log2().ceil();
                rounds * (alpha + bytes * (beta + gamma))
            }
            AllreduceModel::TwoLevel {
                alpha_shm,
                alpha_net,
                beta,
                gamma,
            } => {
                let cores = machine.cores_per_node.min(p).max(1);
                let nodes = p.div_ceil(machine.cores_per_node).max(1);
                // Intra-node tree reduce + final broadcast.
                let shm_rounds = (cores as f64).log2().ceil();
                let shm = 2.0 * shm_rounds * (alpha_shm + bytes * gamma);
                // Inter-node recursive doubling.
                let net = if nodes > 1 {
                    (nodes as f64).log2().ceil() * (alpha_net + bytes * (beta + gamma))
                } else {
                    0.0
                };
                shm + net
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::sahasrat()
    }

    #[test]
    fn single_rank_is_free() {
        let m = machine();
        for model in [
            AllreduceModel::zero(),
            AllreduceModel::recursive_doubling_default(),
            AllreduceModel::two_level_default(),
        ] {
            assert_eq!(model.time(&m, 1, 64), 0.0);
        }
    }

    #[test]
    fn recursive_doubling_is_logarithmic() {
        let m = machine();
        let model = AllreduceModel::recursive_doubling_default();
        let t64 = model.time(&m, 64, 8);
        let t4096 = model.time(&m, 4096, 8);
        // 6 rounds vs 12 rounds.
        assert!((t4096 / t64 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_scales_with_nodes_not_cores() {
        let m = machine();
        let model = AllreduceModel::two_level_default();
        // 24 ranks = 1 node: no inter-node phase.
        let one_node = model.time(&m, 24, 8);
        let two_nodes = model.time(&m, 48, 8);
        assert!(two_nodes > one_node);
        // Within one node, adding ranks only grows the shm tree.
        let t12 = model.time(&m, 12, 8);
        assert!(t12 <= one_node);
    }

    #[test]
    fn message_size_matters_for_large_payloads() {
        let m = machine();
        let model = AllreduceModel::two_level_default();
        let small = model.time(&m, 2880, 8);
        let large = model.time(&m, 2880, 1_000_000);
        assert!(large > 2.0 * small);
    }
}

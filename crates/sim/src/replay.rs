//! Discrete-event replay of an [`OpTrace`] on a [`Machine`] at a given rank
//! count.
//!
//! The replay advances a single critical-path clock (ranks are symmetric
//! under balanced partitioning; load imbalance enters through the
//! *max-loaded-rank* workloads of [`crate::profile::MatrixProfile::work_at`] and straggler
//! noise through [`crate::noise::NoiseModel`]). Non-blocking allreduce
//! semantics follow MPI:
//!
//! * with asynchronous progress (`machine.async_progress`), a reduction
//!   posted at `t₀` completes at `t₀ + G`, concurrently with any compute —
//!   the wait exposes only `max(0, t₀ + G − t_wait)`;
//! * without it, no progress happens outside MPI calls, so the full `G` is
//!   exposed at the wait — reproducing the paper's requirement of DMAPP +
//!   `MPICH_NEMESIS_ASYNC_PROGRESS=1` (§VI-A).

use std::collections::HashMap;

use crate::machine::Machine;
use crate::profile::SpmvWork;
use crate::trace::{Op, OpTrace};

/// Cost breakdown of one replayed execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayResult {
    /// End-to-end modelled time, seconds.
    pub total_time: f64,
    /// Rank-local compute (SpMV + PC + VMA + dot + scalar work).
    pub compute_time: f64,
    /// Point-to-point halo time (SpMV ghost exchange, PC comm rounds).
    pub halo_time: f64,
    /// Allreduce time actually exposed on the critical path (after overlap).
    pub allreduce_exposed: f64,
    /// Total allreduce time including the hidden portion.
    pub allreduce_total: f64,
    /// `(time, relative residual)` at every convergence check.
    pub residual_timeline: Vec<(f64, f64)>,
}

impl ReplayResult {
    /// Fraction of allreduce time hidden behind computation.
    pub fn overlap_fraction(&self) -> f64 {
        // pscg-lint: allow(float-eq, exact-zero accumulator guard before division)
        if self.allreduce_total == 0.0 {
            0.0
        } else {
            1.0 - self.allreduce_exposed / self.allreduce_total
        }
    }
}

/// Replays `trace` on `machine` with `p` ranks.
pub fn replay(trace: &OpTrace, machine: &Machine, p: usize) -> ReplayResult {
    assert!(p > 0, "replay needs at least one rank");
    // SpMV workloads are queried once per registered matrix.
    let works: Vec<SpmvWork> = trace.profiles.iter().map(|m| m.work_at(p)).collect();
    let vec_rows = trace.nrows.div_ceil(p) as f64;

    let mut res = ReplayResult::default();
    let mut t = 0.0f64;
    let mut pending: HashMap<u64, f64> = HashMap::new(); // id -> completion or G
    let mut mpk_works: HashMap<(usize, usize), SpmvWork> = HashMap::new();
    // Straggler stretch factor on collective durations: an allreduce is only
    // as fast as its slowest participant, so one slowed rank stretches every
    // subsequent reduction (clean traces never carry the marker; 1.0).
    let mut straggler = 1.0f64;

    for op in &trace.ops {
        match *op {
            Op::Spmv { matrix, .. } => {
                let w = works[matrix];
                let flops = 2.0 * w.local_nnz as f64;
                // 8 B value + 4 B column index streamed once (PETSc-style
                // 32-bit indices), plus the input/output vector traffic.
                let bytes = 12.0 * w.local_nnz as f64 + 16.0 * w.local_rows as f64;
                let ct = machine.compute_time(flops, bytes);
                let ht = machine.halo_time(w.neighbors, 8.0 * w.halo_doubles as f64);
                res.compute_time += ct;
                res.halo_time += ht;
                t += ct + ht;
            }
            Op::Mpk { matrix, depth, .. } => {
                // FLOPs and streaming of `depth` SpMVs, one widened halo
                // (the widened workload is cached per (matrix, depth)).
                let w = works[matrix];
                let flops = 2.0 * (depth * w.local_nnz) as f64;
                let bytes =
                    12.0 * (depth * w.local_nnz) as f64 + 16.0 * (depth * w.local_rows) as f64;
                let ct = machine.compute_time(flops, bytes);
                let wd = *mpk_works
                    .entry((matrix, depth))
                    .or_insert_with(|| trace.profiles[matrix].work_at_depth(p, depth));
                let ht = machine.halo_time(wd.neighbors, 8.0 * wd.halo_doubles as f64);
                res.compute_time += ct;
                res.halo_time += ht;
                t += ct + ht;
            }
            Op::Pc {
                matrix,
                flops_per_row,
                bytes_per_row,
                comm_rounds,
                ..
            } => {
                let w = works[matrix];
                let rows = w.local_rows as f64;
                let ct = machine.compute_time(flops_per_row * rows, bytes_per_row * rows);
                let ht = comm_rounds as f64
                    * machine.halo_time(w.neighbors, 8.0 * w.halo_doubles as f64);
                res.compute_time += ct;
                res.halo_time += ht;
                t += ct + ht;
            }
            Op::Local {
                flops_per_row,
                bytes_per_row,
                ..
            } => {
                let ct = machine.compute_time(flops_per_row * vec_rows, bytes_per_row * vec_rows);
                res.compute_time += ct;
                t += ct;
            }
            Op::Scalar { flops } => {
                let ct = flops / machine.flops_per_core;
                res.compute_time += ct;
                t += ct;
            }
            Op::ArPost { id, doubles, .. } => {
                let g = machine.allreduce_time(p, doubles) * straggler;
                res.allreduce_total += g;
                // Store the absolute completion time (async progress) or
                // the raw duration to expose at the wait (no progress).
                pending.insert(id, if machine.async_progress { t + g } else { g });
            }
            Op::ArWait { id } => {
                let stored = pending
                    .remove(&id)
                    .expect("ArWait without matching ArPost in trace"); // pscg-lint: allow(panic-in-hot-path, a missing ArPost means a corrupt trace; replay has no sound continuation)
                                                                        // `stored` is the absolute completion time (async progress)
                                                                        // or the full duration exposed at the wait (no progress).
                let exposed = if machine.async_progress {
                    (stored - t).max(0.0) // pscg-lint: allow(nan-clamp, clamps tiny negative float subtraction of finite trace times, never a reduction)
                } else {
                    stored
                };
                res.allreduce_exposed += exposed;
                t += exposed;
            }
            Op::ArBlocking { doubles, .. } => {
                let g = machine.allreduce_time(p, doubles) * straggler;
                res.allreduce_total += g;
                res.allreduce_exposed += g;
                t += g;
            }
            // A read of an in-flight reduction costs nothing on the model:
            // it is a *correctness* defect (see the schedule analyzer), not
            // a timing event.
            Op::RedRead { .. } => {}
            // A fault-injected timeout: the model does not price fault
            // recovery. A dropped completion (non-retriable) retires its
            // handle — the posted cost stays in `allreduce_total` but is
            // never exposed; a delayed one leaves the handle pending for
            // the eventual successful wait.
            Op::ArTimeout { id, retriable } => {
                if !retriable {
                    pending
                        .remove(&id)
                        .expect("ArTimeout without matching ArPost in trace"); // pscg-lint: allow(panic-in-hot-path, a missing ArPost means a corrupt trace; replay has no sound continuation)
                }
            }
            Op::ResCheck { relres } => {
                res.residual_timeline.push((t, relres));
            }
            // A straggling rank gates every later reduction: the worst
            // observed factor applies from here on.
            Op::RankSlow { factor, .. } => {
                straggler = straggler.max(factor);
            }
            // A rank death is a correctness/recovery event; the model does
            // not price the rebuild itself. Post-death ops in the trace ran
            // on the survivor communicator.
            Op::RankDead { .. } => {}
        }
    }
    assert!(pending.is_empty(), "trace ended with unawaited allreduces");
    res.total_time = t;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Layout, MatrixProfile};
    use crate::trace::LocalKind;

    fn base_trace() -> OpTrace {
        let mut tr = OpTrace::new(1_000_000);
        tr.register_matrix(MatrixProfile::stencil3d(
            100,
            100,
            100,
            2,
            124_000_000,
            Layout::Box,
        ));
        tr
    }

    #[test]
    fn compute_shrinks_with_ranks() {
        let mut tr = base_trace();
        tr.push(Op::spmv(0));
        let m = Machine::sahasrat();
        let t1 = replay(&tr, &m, 24).total_time;
        let t2 = replay(&tr, &m, 960).total_time;
        assert!(t2 < t1 / 10.0, "t1={t1} t2={t2}");
    }

    #[test]
    fn nonblocking_overlap_hides_allreduce() {
        let mut tr = base_trace();
        tr.push(Op::post(1, 8));
        tr.push(Op::spmv(0));
        tr.push(Op::wait(1));
        let m = Machine::sahasrat();
        let r = replay(&tr, &m, 24);
        // On one node the SpMV (ms-scale) dwarfs G (µs-scale): fully hidden.
        assert!(
            r.allreduce_exposed < 1e-12,
            "exposed = {}",
            r.allreduce_exposed
        );
        assert!(r.allreduce_total > 0.0);
        assert!(r.overlap_fraction() > 0.999);
    }

    #[test]
    fn blocking_allreduce_is_always_exposed() {
        let mut tr = base_trace();
        tr.push(Op::blocking(8));
        tr.push(Op::spmv(0));
        let m = Machine::sahasrat();
        let r = replay(&tr, &m, 48);
        assert_eq!(r.allreduce_exposed, r.allreduce_total);
        assert!(r.allreduce_total > 0.0);
    }

    #[test]
    fn without_async_progress_overlap_vanishes() {
        let mut tr = base_trace();
        tr.push(Op::post(1, 8));
        tr.push(Op::spmv(0));
        tr.push(Op::wait(1));
        let on = replay(&tr, &Machine::sahasrat(), 48);
        let off = replay(&tr, &Machine::sahasrat_no_async_progress(), 48);
        assert!(on.allreduce_exposed < off.allreduce_exposed);
        assert_eq!(off.allreduce_exposed, off.allreduce_total);
        assert!(off.total_time > on.total_time);
    }

    #[test]
    fn ideal_machine_time_is_pure_compute() {
        let mut tr = base_trace();
        tr.push(Op::post(0, 4));
        tr.push(Op::spmv(0));
        tr.push(Op::wait(0));
        tr.push(Op::blocking(4));
        tr.push(Op::local(LocalKind::Vma, 2.0, 0.0));
        let r = replay(&tr, &Machine::ideal(8), 8);
        assert_eq!(r.total_time, r.compute_time);
        assert_eq!(r.allreduce_total, 0.0);
        assert_eq!(r.halo_time, 0.0);
    }

    #[test]
    fn residual_timeline_has_monotone_times() {
        let mut tr = base_trace();
        for i in 0..5 {
            tr.push(Op::spmv(0));
            tr.push(Op::ResCheck {
                relres: 1.0 / (i + 1) as f64,
            });
        }
        let r = replay(&tr, &Machine::sahasrat(), 24);
        assert_eq!(r.residual_timeline.len(), 5);
        for w in r.residual_timeline.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    #[should_panic(expected = "unawaited")]
    fn unawaited_post_panics() {
        let mut tr = base_trace();
        tr.push(Op::post(9, 2));
        replay(&tr, &Machine::sahasrat(), 4);
    }

    #[test]
    fn straggler_marker_stretches_later_allreduces() {
        let mut clean = base_trace();
        clean.push(Op::blocking(8));
        clean.push(Op::blocking(8));
        let mut slow = base_trace();
        slow.push(Op::blocking(8));
        slow.push(Op::RankSlow {
            rank: 3,
            factor: 4.0,
        });
        slow.push(Op::blocking(8));
        let m = Machine::sahasrat();
        let rc = replay(&clean, &m, 48);
        let rs = replay(&slow, &m, 48);
        // First reduction identical, second stretched 4x: total 2G vs 5G.
        assert!((rs.allreduce_total / rc.allreduce_total - 2.5).abs() < 1e-12);
        assert_eq!(rs.allreduce_exposed, rs.allreduce_total);
    }

    #[test]
    fn rank_death_marker_is_free_and_keeps_traces_replayable() {
        let mut tr = base_trace();
        tr.push(Op::post(1, 8));
        tr.push(Op::RankDead { rank: 3 });
        // The solver saw the failure at the wait: the handle retires via a
        // non-retriable timeout, as the tracing engine records.
        tr.push(Op::ArTimeout {
            id: 1,
            retriable: false,
        });
        tr.push(Op::spmv(0));
        let m = Machine::sahasrat();
        let r = replay(&tr, &m, 24);
        assert_eq!(r.allreduce_exposed, 0.0, "retired reduction never exposed");
        assert!(r.allreduce_total > 0.0);
    }

    #[test]
    fn scalar_work_is_rank_independent() {
        let mut tr = base_trace();
        tr.push(Op::Scalar { flops: 1.0e6 });
        let m = Machine::ideal(4);
        assert_eq!(
            replay(&tr, &m, 1).total_time,
            replay(&tr, &m, 64).total_time
        );
    }
}

//! Distributed-memory execution substrate for the PIPE-PsCG reproduction.
//!
//! The paper evaluates on a Cray XC40 with cray-mpich; this crate supplies
//! the equivalents built from scratch (see DESIGN.md §2 for the substitution
//! table):
//!
//! * [`machine`] / [`collective`] / [`noise`] — a calibrated machine model:
//!   roofline compute, α–β–log allreduce (flat and two-level), and a
//!   deterministic straggler-noise term that makes allreduce the dominant
//!   cost at scale, as the paper's §IV argues.
//! * [`profile`] — per-rank-count workload models (box/slab layouts with
//!   closed-form halos for stencils, exact scans for general matrices).
//! * [`trace`] / [`mod@replay`] — solvers record a logical operation trace once
//!   (real numerics), and the replay engine evaluates it for any rank count,
//!   with faithful `MPI_Iallreduce` overlap semantics including the
//!   async-progress requirement of the paper's §VI-A.
//! * [`context`] — the [`context::Context`] trait solvers are written
//!   against, with the single-rank tracing engine [`context::SimCtx`].
//! * [`thread`] — a real message-passing runtime on threads (deterministic
//!   non-blocking allreduces, halo exchange) and the per-rank
//!   [`thread::RankCtx`] engine, proving the solvers are genuinely SPMD.
//!
//! Traces carry buffer identities ([`trace::BufId`]) and communicator
//! identities ([`collective::CommId`]) so the `pscg-analysis` crate can
//! verify overlap schedules statically, without the machine model.

#![warn(missing_docs)]

pub mod collective;
pub mod context;
pub mod machine;
pub mod noise;
pub mod profile;
pub mod replay;
pub mod thread;
pub mod trace;

pub use collective::{
    AllreduceModel, CommError, CommId, InflightTracker, RankFailure, ReduceTimeout,
    ScheduleViolation, WaitOutcome,
};
pub use context::{BuddyRecovery, Context, OpCounters, ReduceHandle, SimCtx};
pub use machine::Machine;
pub use noise::NoiseModel;
pub use profile::{Layout, MatrixProfile, SpmvWork};
pub use replay::{replay, ReplayResult};
pub use trace::{BufId, LocalKind, Op, OpTrace};

//! Machine model: node/core topology, compute rates and network parameters.
//!
//! The paper's testbed is SahasraT, a Cray XC40 — 1376 nodes, 2 × 12-core
//! CPUs and 128 GB per node, Aries interconnect, cray-mpich with DMAPP-based
//! asynchronous progress for `MPI_Iallreduce` (§VI-A). [`Machine::sahasrat`]
//! is a calibrated stand-in for that system; all constants are public and
//! documented so experiments can probe other regimes.
//!
//! Compute kernels are costed with a roofline rule,
//! `time = max(flops / F, bytes / B)`, where `F` is the sustained per-core
//! flop rate and `B` the per-core share of node memory bandwidth when all
//! cores are active. Collective and point-to-point costs live in
//! [`crate::collective`]; OS-noise straggler effects in [`crate::noise`].

use crate::collective::AllreduceModel;
use crate::noise::NoiseModel;

/// A distributed-memory machine: topology, compute and network parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable name used in reports.
    pub name: String,
    /// Cores per node that jobs fill before adding nodes (paper: 24).
    pub cores_per_node: usize,
    /// Sustained per-core floating-point rate for solver kernels, flop/s.
    pub flops_per_core: f64,
    /// Per-core share of node memory bandwidth with all cores busy, byte/s.
    pub mem_bw_per_core: f64,
    /// Point-to-point message latency between nodes, seconds.
    pub p2p_latency: f64,
    /// Point-to-point inverse bandwidth between nodes, seconds per byte.
    pub p2p_inv_bw: f64,
    /// Allreduce cost model.
    pub allreduce: AllreduceModel,
    /// OS / system noise model applied at synchronisation points.
    pub noise: NoiseModel,
    /// Whether non-blocking collectives progress asynchronously while the
    /// host computes (the paper needs `MPICH_NEMESIS_ASYNC_PROGRESS=1` and
    /// DMAPP for this; without it the overlap vanishes — experiment E8).
    pub async_progress: bool,
}

impl Machine {
    /// A Cray XC40 stand-in calibrated to reproduce the paper's qualitative
    /// scaling behaviour (see EXPERIMENTS.md for the calibration notes):
    /// PCG speedup peaking around 40 nodes on the 125-pt 1M-unknown problem
    /// and allreduce cost overtaking one PC + SPMV beyond ~40–60 nodes.
    pub fn sahasrat() -> Machine {
        Machine {
            name: "sahasrat-xc40".into(),
            cores_per_node: 24,
            // 2.4 GHz cores; sparse kernels sustain well below peak.
            flops_per_core: 2.0e9,
            // ~100 GB/s effective per node shared by 24 cores (stencil SpMV
            // enjoys heavy x-vector reuse, so it streams close to peak).
            mem_bw_per_core: 4.0e9,
            p2p_latency: 3.0e-6,
            p2p_inv_bw: 1.0 / 8.0e9,
            allreduce: AllreduceModel::two_level_default(),
            noise: NoiseModel::default_cray(),
            async_progress: true,
        }
    }

    /// The same machine with asynchronous progress disabled — reproduces
    /// running without `-LIBS=-ldmapp` / `MPICH_NEMESIS_ASYNC_PROGRESS=1`.
    pub fn sahasrat_no_async_progress() -> Machine {
        Machine {
            async_progress: false,
            ..Machine::sahasrat()
        }
    }

    /// A noiseless machine with instant communication: useful in tests to
    /// check that replayed time then equals pure compute time.
    pub fn ideal(cores_per_node: usize) -> Machine {
        Machine {
            name: "ideal".into(),
            cores_per_node,
            flops_per_core: 1.0e9,
            mem_bw_per_core: f64::INFINITY,
            p2p_latency: 0.0,
            p2p_inv_bw: 0.0,
            allreduce: AllreduceModel::zero(),
            noise: NoiseModel::none(),
            async_progress: true,
        }
    }

    /// Number of nodes a job with `p` ranks occupies (ranks fill nodes).
    pub fn nodes_for(&self, p: usize) -> usize {
        p.div_ceil(self.cores_per_node)
    }

    /// Roofline compute time for one rank executing `flops` floating-point
    /// operations over `bytes` of memory traffic.
    pub fn compute_time(&self, flops: f64, bytes: f64) -> f64 {
        let ft = flops / self.flops_per_core;
        let bt = bytes / self.mem_bw_per_core;
        ft.max(bt)
    }

    /// Time for the slowest rank's halo exchange: `neighbors` messages of
    /// `bytes_total / neighbors` each, sent and received concurrently; we
    /// charge latency per message plus serialised bandwidth on the total
    /// volume (conservative for the critical-path rank).
    pub fn halo_time(&self, neighbors: usize, bytes_total: f64) -> f64 {
        if neighbors == 0 {
            return 0.0;
        }
        self.p2p_latency * neighbors as f64 + bytes_total * self.p2p_inv_bw
    }

    /// Time for one allreduce over `p` ranks of `doubles` values, including
    /// the synchronisation (straggler) penalty. The same duration applies to
    /// blocking and non-blocking collectives; they differ only in *when* the
    /// replay clock absorbs it (a non-blocking allreduce runs concurrently
    /// with compute between post and wait).
    pub fn allreduce_time(&self, p: usize, doubles: usize) -> f64 {
        self.allreduce.time(self, p, doubles) + self.noise.sync_penalty(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_round_up() {
        let m = Machine::sahasrat();
        assert_eq!(m.nodes_for(24), 1);
        assert_eq!(m.nodes_for(25), 2);
        assert_eq!(m.nodes_for(2880), 120);
    }

    #[test]
    fn roofline_takes_max() {
        let m = Machine::sahasrat();
        // Memory-bound: lots of bytes, no flops.
        assert_eq!(m.compute_time(0.0, 4.0e9), 1.0);
        // Compute-bound: lots of flops, no bytes.
        assert_eq!(m.compute_time(2.0e9, 0.0), 1.0);
    }

    #[test]
    fn ideal_machine_has_free_communication() {
        let m = Machine::ideal(4);
        assert_eq!(m.allreduce_time(1024, 8), 0.0);
        assert_eq!(m.halo_time(26, 1e6), 0.0);
    }

    #[test]
    fn allreduce_grows_with_ranks() {
        let m = Machine::sahasrat();
        let small = m.allreduce_time(24, 8);
        let large = m.allreduce_time(2880, 8);
        assert!(large > small, "allreduce must grow with rank count");
    }

    #[test]
    fn halo_time_zero_without_neighbors() {
        let m = Machine::sahasrat();
        assert_eq!(m.halo_time(0, 0.0), 0.0);
        assert!(m.halo_time(26, 8192.0) > 0.0);
    }
}

//! Workload profiles: how a matrix's work and halo traffic split across `P`
//! ranks.
//!
//! The replay engine costs an SpMV from a [`MatrixProfile`], which answers:
//! what is the critical-path rank's local row count, local nonzero count,
//! halo volume and neighbour count at a given rank count `P`?
//!
//! Structured problems get closed forms, for two layouts:
//!
//! * [`Layout::Box`] — the near-cubic process grid a PETSc `DMDA` uses for
//!   stencil problems (the paper's Poisson runs). Halo is the local block's
//!   surface shell, neighbours are the ≤26 (3-D) / ≤8 (2-D) adjacent blocks.
//! * [`Layout::Slab`] — contiguous row blocks, the PETSc `MatAIJ` default
//!   used for matrices read from files (the SuiteSparse runs). For a 3-D
//!   operator a thin slab needs whole ±radius planes of ghost data, which is
//!   exactly why general matrices scale worse than DMDA stencils.
//!
//! Irregular matrices use [`MatrixProfile::general_from_matrix`], which
//! pre-computes exact per-`P` statistics with
//! [`pscg_sparse::partition::halo_stats`].

use pscg_sparse::partition::{halo_stats, RowBlockPartition};
use pscg_sparse::CsrMatrix;

/// Process layout for structured profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Near-cubic process grid (DMDA-style).
    Box,
    /// Contiguous row blocks (MatAIJ-style).
    Slab,
}

/// Critical-path workload of one SpMV at a given rank count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvWork {
    /// Rows owned by the most loaded rank.
    pub local_rows: usize,
    /// Nonzeros owned by the most loaded rank.
    pub local_nnz: usize,
    /// Ghost values (f64) the critical rank receives.
    pub halo_doubles: usize,
    /// Number of neighbour ranks it exchanges with.
    pub neighbors: usize,
}

/// Per-`P` workload model for one matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixProfile {
    /// Structured 3-D grid operator with a box stencil of given radius.
    Stencil3D {
        /// Grid extents.
        nx: usize,
        /// Grid extents.
        ny: usize,
        /// Grid extents.
        nz: usize,
        /// Stencil radius (125-pt ⇒ 2, 27-pt/7-pt ⇒ 1).
        radius: usize,
        /// Total stored nonzeros.
        nnz: usize,
        /// Process layout.
        layout: Layout,
    },
    /// Structured 2-D grid operator.
    Stencil2D {
        /// Grid extents.
        nx: usize,
        /// Grid extents.
        ny: usize,
        /// Stencil radius.
        radius: usize,
        /// Total stored nonzeros.
        nnz: usize,
        /// Process layout.
        layout: Layout,
    },
    /// Irregular matrix with exact statistics precomputed for a set of `P`s.
    General {
        /// Matrix dimension.
        nrows: usize,
        /// Total stored nonzeros.
        nnz: usize,
        /// Sorted `(P, work)` pairs; queries snap to the nearest entry.
        table: Vec<(usize, SpmvWork)>,
    },
}

impl MatrixProfile {
    /// Profile of a 3-D stencil problem.
    pub fn stencil3d(
        nx: usize,
        ny: usize,
        nz: usize,
        radius: usize,
        nnz: usize,
        layout: Layout,
    ) -> Self {
        MatrixProfile::Stencil3D {
            nx,
            ny,
            nz,
            radius,
            nnz,
            layout,
        }
    }

    /// Profile of a 2-D stencil problem.
    pub fn stencil2d(nx: usize, ny: usize, radius: usize, nnz: usize, layout: Layout) -> Self {
        MatrixProfile::Stencil2D {
            nx,
            ny,
            radius,
            nnz,
            layout,
        }
    }

    /// Exact profile of an arbitrary matrix under row-block partitioning,
    /// computed for each rank count in `ps` (one matrix pass per entry).
    pub fn general_from_matrix(a: &CsrMatrix, ps: &[usize]) -> Self {
        let mut table: Vec<(usize, SpmvWork)> = ps
            .iter()
            .map(|&p| {
                let part = RowBlockPartition::balanced(a.nrows(), p);
                let stats = halo_stats(a, &part);
                let mut worst = SpmvWork {
                    local_rows: part.max_local_len(),
                    local_nnz: 0,
                    halo_doubles: 0,
                    neighbors: 0,
                };
                for r in 0..p {
                    let (lo, hi) = part.range(r);
                    let nnz_r = a.row_ptr()[hi] - a.row_ptr()[lo];
                    worst.local_nnz = worst.local_nnz.max(nnz_r);
                    worst.halo_doubles = worst.halo_doubles.max(stats.ranks[r].ghost_cols);
                    worst.neighbors = worst.neighbors.max(stats.ranks[r].recv_neighbors);
                }
                (p, worst)
            })
            .collect();
        table.sort_by_key(|&(p, _)| p);
        MatrixProfile::General {
            nrows: a.nrows(),
            nnz: a.nnz(),
            table,
        }
    }

    /// Matrix dimension.
    pub fn nrows(&self) -> usize {
        match *self {
            MatrixProfile::Stencil3D { nx, ny, nz, .. } => nx * ny * nz,
            MatrixProfile::Stencil2D { nx, ny, .. } => nx * ny,
            MatrixProfile::General { nrows, .. } => nrows,
        }
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        match *self {
            MatrixProfile::Stencil3D { nnz, .. }
            | MatrixProfile::Stencil2D { nnz, .. }
            | MatrixProfile::General { nnz, .. } => nnz,
        }
    }

    /// Critical-path workload of a depth-`k` matrix-powers kernel at rank
    /// count `p`: the ghost region widens to `k·radius` (computed exactly
    /// for stencil layouts; scaled `k`-fold for general profiles), while
    /// the FLOPs are those of `k` SpMVs (charged by the replay).
    pub fn work_at_depth(&self, p: usize, k: usize) -> SpmvWork {
        assert!(k >= 1);
        match *self {
            MatrixProfile::Stencil3D {
                nx,
                ny,
                nz,
                radius,
                nnz,
                layout,
            } => {
                let deep = MatrixProfile::Stencil3D {
                    nx,
                    ny,
                    nz,
                    radius: radius * k,
                    nnz,
                    layout,
                };
                deep.work_at(p)
            }
            MatrixProfile::Stencil2D {
                nx,
                ny,
                radius,
                nnz,
                layout,
            } => {
                let deep = MatrixProfile::Stencil2D {
                    nx,
                    ny,
                    radius: radius * k,
                    nnz,
                    layout,
                };
                deep.work_at(p)
            }
            MatrixProfile::General { .. } => {
                let mut w = self.work_at(p);
                w.halo_doubles *= k;
                w
            }
        }
    }

    /// Critical-path SpMV workload at rank count `p`.
    pub fn work_at(&self, p: usize) -> SpmvWork {
        assert!(p > 0);
        match *self {
            MatrixProfile::Stencil3D {
                nx,
                ny,
                nz,
                radius,
                nnz,
                layout,
            } => match layout {
                Layout::Box => box3d_work(nx, ny, nz, radius, nnz, p),
                Layout::Slab => slab_work(nx * ny, nz, nx * ny * nz, radius, nnz, p),
            },
            MatrixProfile::Stencil2D {
                nx,
                ny,
                radius,
                nnz,
                layout,
            } => match layout {
                Layout::Box => box2d_work(nx, ny, radius, nnz, p),
                Layout::Slab => slab_work(nx, ny, nx * ny, radius, nnz, p),
            },
            MatrixProfile::General { ref table, .. } => {
                assert!(!table.is_empty(), "general profile has no entries");
                // Snap to the nearest precomputed P.
                let mut best = table[0];
                for &(tp, w) in table {
                    if tp.abs_diff(p) < best.0.abs_diff(p) {
                        best = (tp, w);
                    }
                }
                best.1
            }
        }
    }
}

/// Splits `extent` grid points over `parts` ranks; returns the largest share.
fn ceil_div(extent: usize, parts: usize) -> usize {
    extent.div_ceil(parts)
}

/// Chooses the process-grid factorisation `px·py·pz = p` that minimises the
/// local block's surface (communication volume), then returns the interior
/// (critical-path) rank's workload.
fn box3d_work(nx: usize, ny: usize, nz: usize, radius: usize, nnz: usize, p: usize) -> SpmvWork {
    let n = nx * ny * nz;
    let mut best: Option<(usize, (usize, usize, usize))> = None;
    for px in divisors(p) {
        if px > nx {
            continue;
        }
        for py in divisors(p / px) {
            if py > ny {
                continue;
            }
            let pz = p / px / py;
            if pz > nz {
                continue;
            }
            let (lx, ly, lz) = (ceil_div(nx, px), ceil_div(ny, py), ceil_div(nz, pz));
            let surface = 2 * (lx * ly + ly * lz + lx * lz);
            if best.is_none_or(|(s, _)| surface < s) {
                best = Some((surface, (px, py, pz)));
            }
        }
    }
    // Degenerate: p has no factorisation fitting the grid (e.g. a prime p
    // larger than every extent). Fall back to the slab model, which handles
    // any rank count, instead of silently modelling fewer ranks.
    let Some((_, (px, py, pz))) = best else {
        return slab_work(nx * ny, nz, n, radius, nnz, p);
    };
    let (lx, ly, lz) = (ceil_div(nx, px), ceil_div(ny, py), ceil_div(nz, pz));
    let local_rows = lx * ly * lz;
    let r = radius;
    // Ghost shell of thickness r around the block, truncated per direction
    // when there is no neighbour on that side. The interior rank has
    // neighbours on every side that has more than one process.
    let gx = if px > 1 { 2 * r } else { 0 };
    let gy = if py > 1 { 2 * r } else { 0 };
    let gz = if pz > 1 { 2 * r } else { 0 };
    let halo = (lx + gx) * (ly + gy) * (lz + gz) - local_rows;
    // Neighbour blocks of the interior rank: the 3x3x3 block neighbourhood
    // minus self, restricted to directions that actually have neighbours.
    let mx = if px > 1 { 3 } else { 1 };
    let my = if py > 1 { 3 } else { 1 };
    let mz = if pz > 1 { 3 } else { 1 };
    let neighbors = mx * my * mz - 1;
    SpmvWork {
        local_rows,
        local_nnz: scaled_nnz(nnz, local_rows, n),
        halo_doubles: halo,
        neighbors,
    }
}

/// 2-D analogue of [`box3d_work`].
fn box2d_work(nx: usize, ny: usize, radius: usize, nnz: usize, p: usize) -> SpmvWork {
    let n = nx * ny;
    let mut best: Option<(usize, (usize, usize))> = None;
    for px in divisors(p) {
        if px > nx {
            continue;
        }
        let py = p / px;
        if py > ny {
            continue;
        }
        let (lx, ly) = (ceil_div(nx, px), ceil_div(ny, py));
        let perimeter = 2 * (lx + ly);
        if best.is_none_or(|(s, _)| perimeter < s) {
            best = Some((perimeter, (px, py)));
        }
    }
    let Some((_, (px, py))) = best else {
        return slab_work(nx, ny, n, radius, nnz, p);
    };
    let (lx, ly) = (ceil_div(nx, px), ceil_div(ny, py));
    let local_rows = lx * ly;
    let r = radius;
    let gx = if px > 1 { 2 * r } else { 0 };
    let gy = if py > 1 { 2 * r } else { 0 };
    let halo = (lx + gx) * (ly + gy) - local_rows;
    let mx = if px > 1 { 3 } else { 1 };
    let my = if py > 1 { 3 } else { 1 };
    SpmvWork {
        local_rows,
        local_nnz: scaled_nnz(nnz, local_rows, n),
        halo_doubles: halo,
        neighbors: mx * my - 1,
    }
}

/// Row-block (slab) layout over a grid whose lexicographic "plane" has
/// `plane` points and `nplanes` planes. A rank owning fewer than
/// `radius·plane` rows still needs the full ±radius planes of ghosts, which
/// is the scaling penalty of 1-D partitions.
fn slab_work(
    plane: usize,
    nplanes: usize,
    n: usize,
    radius: usize,
    nnz: usize,
    p: usize,
) -> SpmvWork {
    debug_assert_eq!(plane * nplanes, n);
    let local_rows = ceil_div(n, p);
    let ghost_per_side = (radius * plane).min(n - local_rows.min(n));
    let interior_sides = if p > 1 { 2 } else { 0 };
    let halo = interior_sides * ghost_per_side;
    // Each side's ghosts live on ceil(ghost / local_rows) consecutive ranks.
    let neighbors_per_side = if p > 1 {
        ghost_per_side.div_ceil(local_rows).min(p - 1)
    } else {
        0
    };
    SpmvWork {
        local_rows,
        local_nnz: scaled_nnz(nnz, local_rows, n),
        halo_doubles: halo,
        neighbors: interior_sides * neighbors_per_side,
    }
}

/// Nonzeros of the most loaded rank, assuming uniform rows.
fn scaled_nnz(nnz: usize, local_rows: usize, n: usize) -> usize {
    ((nnz as f64) * (local_rows as f64) / (n as f64)).ceil() as usize
}

/// All divisors of `p`, ascending.
fn divisors(p: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            out.push(d);
            if d != p / d {
                out.push(p / d);
            }
        }
        d += 1;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn box3d_single_rank_has_no_halo() {
        let w = box3d_work(10, 10, 10, 2, 125_000, 1);
        assert_eq!(w.local_rows, 1000);
        assert_eq!(w.halo_doubles, 0);
        assert_eq!(w.neighbors, 0);
    }

    #[test]
    fn box3d_cubic_decomposition_is_chosen() {
        // 8 ranks on a cube: 2x2x2, local 5^3, halo shell of radius 1.
        let w = box3d_work(10, 10, 10, 1, 0, 8);
        assert_eq!(w.local_rows, 125);
        assert_eq!(w.halo_doubles, 7 * 7 * 7 - 125);
        assert_eq!(w.neighbors, 26);
    }

    #[test]
    fn slab_thin_ranks_pay_full_planes() {
        // 100 planes of 10k points, radius 2, 1000 ranks -> 1000 rows each,
        // but ghosts are 2 full planes per side.
        let w = slab_work(10_000, 100, 1_000_000, 2, 0, 1000);
        assert_eq!(w.local_rows, 1000);
        assert_eq!(w.halo_doubles, 2 * 20_000);
        assert_eq!(w.neighbors, 2 * 20);
    }

    #[test]
    fn box_beats_slab_at_scale() {
        let p = MatrixProfile::stencil3d(100, 100, 100, 2, 125_000_000, Layout::Box);
        let s = MatrixProfile::stencil3d(100, 100, 100, 2, 125_000_000, Layout::Slab);
        let wp = p.work_at(1000);
        let ws = s.work_at(1000);
        assert!(wp.halo_doubles < ws.halo_doubles);
    }

    #[test]
    fn work_scales_down_with_ranks() {
        let prof = MatrixProfile::stencil3d(64, 64, 64, 2, 30_000_000, Layout::Box);
        let w1 = prof.work_at(1);
        let w64 = prof.work_at(64);
        assert_eq!(w1.local_rows, 64 * 64 * 64);
        assert!(w64.local_rows < w1.local_rows / 32);
        assert!(w64.local_nnz < w1.local_nnz / 32);
    }

    #[test]
    fn general_profile_matches_exact_stats() {
        let g = Grid3::new(4, 4, 8);
        let a = poisson3d_7pt(g, None);
        let prof = MatrixProfile::general_from_matrix(&a, &[1, 2, 4]);
        let w2 = prof.work_at(2);
        assert_eq!(w2.local_rows, 64);
        assert_eq!(w2.halo_doubles, 16);
        assert_eq!(w2.neighbors, 1);
        // Nearest-P snapping.
        let w3 = prof.work_at(3);
        assert_eq!(w3, prof.work_at(2));
        assert_eq!(prof.work_at(100), prof.work_at(4));
    }

    #[test]
    fn stencil2d_box_layout() {
        let prof = MatrixProfile::stencil2d(100, 100, 1, 50_000, Layout::Box);
        let w = prof.work_at(4); // 2x2
        assert_eq!(w.local_rows, 2500);
        assert_eq!(w.neighbors, 8);
        assert_eq!(w.halo_doubles, 52 * 52 - 2500);
    }
}

//! Logical operation traces.
//!
//! A solver running under [`crate::context::SimCtx`] performs the *real*
//! numerics once while appending one [`Op`] per kernel invocation. Because
//! every method in the paper is bulk-synchronous SPMD with deterministic
//! reductions, the recorded sequence is independent of the rank count — so a
//! single numeric run can be *replayed* (see [`mod@crate::replay`]) against any
//! machine and any `P`, which is how the strong-scaling figures are produced
//! on a single-core host.
//!
//! Beyond timing, the trace now carries enough *identity* information for
//! static schedule analysis (the `pscg-analysis` crate): each operation
//! records which logical buffers it reads and writes ([`BufId`]) and which
//! communicator a collective runs on ([`CommId`]). From those, a
//! happens-before DAG over the trace is well-defined without ever consulting
//! the machine model: program order within a rank, plus post→wait completion
//! edges for non-blocking collectives (see [`OpTrace::completion_edges`]).

use crate::collective::CommId;
use crate::profile::MatrixProfile;

/// Stable identity of a logical rank-local buffer (a vector or a block of
/// vectors) as observed by the tracing engine.
///
/// Identities are interned from the buffer's storage address at record time
/// (see `SimCtx::buf_of`), so two operations touching the same `Vec<f64>`
/// carry the same `BufId` even across reallocations of *other* vectors.
/// The sentinel [`BufId::ANON`] marks an operand the engine did not track
/// (e.g. traces built by hand, or engines that do not intern); analysis
/// passes must treat `ANON` as "unknown, never aliasing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId(pub u64);

impl BufId {
    /// Untracked operand: never participates in hazard detection.
    pub const ANON: BufId = BufId(0);

    /// True for tracked (non-anonymous) buffers.
    #[inline]
    pub fn is_tracked(self) -> bool {
        self != BufId::ANON
    }
}

/// Classification of rank-local compute, for cost-breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKind {
    /// Vector-multiply-add work (AXPY family, recurrence linear combinations).
    Vma,
    /// Local portion of dot products / Gram matrices.
    Dot,
}

/// One logical operation of an SPMD solver.
///
/// Buffer fields default to [`BufId::ANON`] when built through the
/// convenience constructors ([`Op::spmv`], [`Op::post`], …), which is what
/// hand-written traces in tests use; the tracing engine fills real
/// identities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Sparse matrix–vector product with the registered matrix `matrix`.
    Spmv {
        /// Index into [`OpTrace::profiles`].
        matrix: usize,
        /// Input vector.
        x: BufId,
        /// Output vector.
        y: BufId,
    },
    /// Matrix-powers kernel: `depth` consecutive SpMVs computed with a
    /// single widened halo exchange (Hoemmen's CA-SpMV; paper §II). Same
    /// FLOPs as `depth` SpMVs, one `depth·radius` ghost exchange.
    Mpk {
        /// Index into [`OpTrace::profiles`].
        matrix: usize,
        /// Number of consecutive powers.
        depth: usize,
        /// The block of basis vectors being extended (read and written).
        block: BufId,
    },
    /// Preconditioner application; cost expressed per local row, plus
    /// `comm_rounds` halo-exchange-equivalent communication rounds (0 for
    /// pointwise/local preconditioners, >0 for multigrid-style ones).
    Pc {
        /// Index into [`OpTrace::profiles`] (for halo geometry).
        matrix: usize,
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
        /// Halo-exchange rounds per application.
        comm_rounds: u32,
        /// Residual-like input vector.
        r: BufId,
        /// Preconditioned output vector.
        u: BufId,
    },
    /// Rank-local vector work over the partitioned vectors.
    Local {
        /// VMA or dot-product work (for the breakdown).
        kind: LocalKind,
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
        /// Vectors read (up to two tracked operands; `ANON` when fewer).
        reads: [BufId; 2],
        /// Vector written (`ANON` for pure reductions into scalars).
        write: BufId,
    },
    /// Rank-replicated scalar work (the s × s LU solves), independent of `P`.
    Scalar {
        /// Total floating-point operations.
        flops: f64,
    },
    /// Post of a non-blocking allreduce of `doubles` values.
    ArPost {
        /// Handle correlating with the matching [`Op::ArWait`].
        id: u64,
        /// Payload size in f64 values.
        doubles: usize,
        /// Communicator the collective runs on.
        comm: CommId,
    },
    /// Completion wait of a previously posted non-blocking allreduce.
    ArWait {
        /// Handle from [`Op::ArPost`].
        id: u64,
    },
    /// A wait attempt that timed out under an injected completion fault
    /// (`crates/fault`): `retriable: true` is a *delayed* completion (the
    /// handle stays live and a later wait will succeed), `retriable: false`
    /// is a *dropped* completion (the handle is retired; the posted values
    /// are gone and the solver must re-post to recover). The fault-aware
    /// hazard analysis keys on this op; clean runs never record it.
    ArTimeout {
        /// Handle from [`Op::ArPost`].
        id: u64,
        /// Whether the completion will still arrive on a retried wait.
        retriable: bool,
    },
    /// Read of the *result* of a posted-but-not-yet-waited non-blocking
    /// allreduce (the engine hands back rank-local partial values).
    ///
    /// This is never correct in an SPMD method — it is the silent-corruption
    /// bug class of mis-pipelined CG variants (Cools & Vanroose): on one
    /// rank the numbers happen to be right, on `P > 1` every rank computes
    /// with different, un-reduced scalars. The tracing engine records it so
    /// the static analyzer can flag it; replay assigns it zero cost.
    RedRead {
        /// Handle from [`Op::ArPost`].
        id: u64,
    },
    /// A blocking allreduce of `doubles` values.
    ArBlocking {
        /// Payload size in f64 values.
        doubles: usize,
        /// Communicator the collective runs on.
        comm: CommId,
    },
    /// Convergence check: records the relative residual at this point so the
    /// replay can emit a `(time, residual)` trajectory (paper Figure 5).
    ResCheck {
        /// Relative residual norm at this check.
        relres: f64,
    },
    /// A modeled rank turned straggler here (rank-event fault plans only):
    /// every collective from this point on completes `factor`× slower, so
    /// the replay stretches post→wait windows honestly instead of letting
    /// the overlap accounting hide the slow rank. Zero cost by itself;
    /// clean runs never record it.
    RankSlow {
        /// The straggling rank.
        rank: u32,
        /// Collective completion-time multiplier (finite, ≥ 1).
        factor: f64,
    },
    /// A modeled rank died here (rank-event fault plans only). Marker for
    /// post-mortem analysis: the ops that follow ran on the survivor
    /// communicator (or aborted). Zero cost; clean runs never record it.
    RankDead {
        /// The dead rank.
        rank: u32,
    },
}

impl Op {
    /// An SpMV on `matrix` with untracked operands.
    pub fn spmv(matrix: usize) -> Op {
        Op::Spmv {
            matrix,
            x: BufId::ANON,
            y: BufId::ANON,
        }
    }

    /// A matrix-powers kernel on `matrix` with an untracked basis block.
    pub fn mpk(matrix: usize, depth: usize) -> Op {
        Op::Mpk {
            matrix,
            depth,
            block: BufId::ANON,
        }
    }

    /// A preconditioner application with untracked operands.
    pub fn pc(matrix: usize, flops_per_row: f64, bytes_per_row: f64, comm_rounds: u32) -> Op {
        Op::Pc {
            matrix,
            flops_per_row,
            bytes_per_row,
            comm_rounds,
            r: BufId::ANON,
            u: BufId::ANON,
        }
    }

    /// Rank-local vector work with untracked operands.
    pub fn local(kind: LocalKind, flops_per_row: f64, bytes_per_row: f64) -> Op {
        Op::Local {
            kind,
            flops_per_row,
            bytes_per_row,
            reads: [BufId::ANON; 2],
            write: BufId::ANON,
        }
    }

    /// A non-blocking allreduce post on the world communicator.
    pub fn post(id: u64, doubles: usize) -> Op {
        Op::ArPost {
            id,
            doubles,
            comm: CommId::WORLD,
        }
    }

    /// A wait for the non-blocking allreduce `id`.
    pub fn wait(id: u64) -> Op {
        Op::ArWait { id }
    }

    /// A timed-out wait on the non-blocking allreduce `id` (fault-injected
    /// completion schedules only).
    pub fn timeout(id: u64, retriable: bool) -> Op {
        Op::ArTimeout { id, retriable }
    }

    /// A blocking allreduce on the world communicator.
    pub fn blocking(doubles: usize) -> Op {
        Op::ArBlocking {
            doubles,
            comm: CommId::WORLD,
        }
    }

    /// Tracked buffers this operation reads (excluding `ANON`).
    pub fn reads(&self) -> Vec<BufId> {
        let cands: &[BufId] = match self {
            Op::Spmv { x, .. } => &[*x],
            Op::Mpk { block, .. } => &[*block],
            Op::Pc { r, .. } => &[*r],
            Op::Local { reads, .. } => reads,
            _ => &[],
        };
        cands.iter().copied().filter(|b| b.is_tracked()).collect()
    }

    /// Tracked buffers this operation writes (excluding `ANON`).
    pub fn writes(&self) -> Vec<BufId> {
        let cands: &[BufId] = match self {
            Op::Spmv { y, .. } => &[*y],
            Op::Mpk { block, .. } => &[*block],
            Op::Pc { u, .. } => &[*u],
            Op::Local { write, .. } => &[*write],
            _ => &[],
        };
        cands.iter().copied().filter(|b| b.is_tracked()).collect()
    }
}

/// A recorded solver execution: the operation list plus the matrix profiles
/// the operations refer to.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    /// Global problem dimension (vector length before partitioning).
    pub nrows: usize,
    /// Registered matrix workload profiles.
    pub profiles: Vec<MatrixProfile>,
    /// The operation sequence.
    pub ops: Vec<Op>,
}

impl OpTrace {
    /// An empty trace for a problem of dimension `nrows`.
    pub fn new(nrows: usize) -> Self {
        OpTrace {
            nrows,
            profiles: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Registers a matrix profile, returning its index for [`Op::Spmv`].
    pub fn register_matrix(&mut self, profile: MatrixProfile) -> usize {
        self.profiles.push(profile);
        self.profiles.len() - 1
    }

    /// Appends an operation.
    #[inline]
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Counts operations of each communication-relevant type:
    /// `(spmv, pc, blocking allreduces, non-blocking allreduces)`.
    pub fn comm_counts(&self) -> (usize, usize, usize, usize) {
        let mut spmv = 0;
        let mut pc = 0;
        let mut blocking = 0;
        let mut nonblocking = 0;
        for op in &self.ops {
            match op {
                Op::Spmv { .. } => spmv += 1,
                Op::Mpk { depth, .. } => spmv += depth,
                Op::Pc { .. } => pc += 1,
                Op::ArBlocking { .. } => blocking += 1,
                Op::ArPost { .. } => nonblocking += 1,
                _ => {}
            }
        }
        (spmv, pc, blocking, nonblocking)
    }

    /// The happens-before edges *beyond* program order: for every matched
    /// non-blocking collective, `(post_index, wait_index)` — the completion
    /// edge. Together with program order (i → i+1) these define the
    /// schedule DAG the static analyzer works on; operations between a post
    /// and its wait are exactly the ones overlappable with that collective.
    ///
    /// Unmatched posts (posted but never waited) produce no edge here; the
    /// analyzer reports them as leaked collectives. A non-retriable
    /// [`Op::ArTimeout`] (dropped completion) closes its window the same
    /// way a wait does — the handle is retired at that point — while a
    /// retriable timeout leaves the window open until the successful wait.
    pub fn completion_edges(&self) -> Vec<(usize, usize)> {
        let mut open: Vec<(u64, usize)> = Vec::new();
        let mut edges = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::ArPost { id, .. } => open.push((*id, i)),
                Op::ArWait { id }
                | Op::ArTimeout {
                    id,
                    retriable: false,
                } => {
                    if let Some(k) = open.iter().position(|(oid, _)| oid == id) {
                        let (_, post_idx) = open.swap_remove(k);
                        edges.push((post_idx, i));
                    }
                }
                _ => {}
            }
        }
        edges.sort_unstable();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Layout;

    #[test]
    fn trace_records_and_counts() {
        let mut t = OpTrace::new(1000);
        let m = t.register_matrix(MatrixProfile::stencil3d(10, 10, 10, 1, 7000, Layout::Box));
        t.push(Op::spmv(m));
        t.push(Op::post(0, 6));
        t.push(Op::spmv(m));
        t.push(Op::wait(0));
        t.push(Op::blocking(2));
        t.push(Op::pc(m, 1.0, 24.0, 0));
        assert_eq!(t.len(), 6);
        assert_eq!(t.comm_counts(), (2, 1, 1, 1));
    }

    #[test]
    fn completion_edges_pair_posts_with_waits() {
        let mut t = OpTrace::new(8);
        t.push(Op::post(7, 3)); // 0
        t.push(Op::spmv(0)); // 1
        t.push(Op::post(9, 3)); // 2
        t.push(Op::wait(7)); // 3
        t.push(Op::wait(9)); // 4
        t.push(Op::post(11, 3)); // 5: leaked — no edge
        assert_eq!(t.completion_edges(), vec![(0, 3), (2, 4)]);
    }

    #[test]
    fn reads_writes_skip_anonymous() {
        let op = Op::Local {
            kind: LocalKind::Dot,
            flops_per_row: 2.0,
            bytes_per_row: 16.0,
            reads: [BufId(3), BufId::ANON],
            write: BufId::ANON,
        };
        assert_eq!(op.reads(), vec![BufId(3)]);
        assert!(op.writes().is_empty());
        assert!(Op::spmv(0).reads().is_empty());
        let sp = Op::Spmv {
            matrix: 0,
            x: BufId(1),
            y: BufId(2),
        };
        assert_eq!(sp.reads(), vec![BufId(1)]);
        assert_eq!(sp.writes(), vec![BufId(2)]);
    }
}

//! Logical operation traces.
//!
//! A solver running under [`crate::context::SimCtx`] performs the *real*
//! numerics once while appending one [`Op`] per kernel invocation. Because
//! every method in the paper is bulk-synchronous SPMD with deterministic
//! reductions, the recorded sequence is independent of the rank count — so a
//! single numeric run can be *replayed* (see [`mod@crate::replay`]) against any
//! machine and any `P`, which is how the strong-scaling figures are produced
//! on a single-core host.

use crate::profile::MatrixProfile;

/// Classification of rank-local compute, for cost-breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKind {
    /// Vector-multiply-add work (AXPY family, recurrence linear combinations).
    Vma,
    /// Local portion of dot products / Gram matrices.
    Dot,
}

/// One logical operation of an SPMD solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Sparse matrix–vector product with the registered matrix `matrix`.
    Spmv {
        /// Index into [`OpTrace::profiles`].
        matrix: usize,
    },
    /// Matrix-powers kernel: `depth` consecutive SpMVs computed with a
    /// single widened halo exchange (Hoemmen's CA-SpMV; paper §II). Same
    /// FLOPs as `depth` SpMVs, one `depth·radius` ghost exchange.
    Mpk {
        /// Index into [`OpTrace::profiles`].
        matrix: usize,
        /// Number of consecutive powers.
        depth: usize,
    },
    /// Preconditioner application; cost expressed per local row, plus
    /// `comm_rounds` halo-exchange-equivalent communication rounds (0 for
    /// pointwise/local preconditioners, >0 for multigrid-style ones).
    Pc {
        /// Index into [`OpTrace::profiles`] (for halo geometry).
        matrix: usize,
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
        /// Halo-exchange rounds per application.
        comm_rounds: u32,
    },
    /// Rank-local vector work over the partitioned vectors.
    Local {
        /// VMA or dot-product work (for the breakdown).
        kind: LocalKind,
        /// Floating-point work per local row.
        flops_per_row: f64,
        /// Memory traffic per local row.
        bytes_per_row: f64,
    },
    /// Rank-replicated scalar work (the s × s LU solves), independent of `P`.
    Scalar {
        /// Total floating-point operations.
        flops: f64,
    },
    /// Post of a non-blocking allreduce of `doubles` values.
    ArPost {
        /// Handle correlating with the matching [`Op::ArWait`].
        id: u64,
        /// Payload size in f64 values.
        doubles: usize,
    },
    /// Completion wait of a previously posted non-blocking allreduce.
    ArWait {
        /// Handle from [`Op::ArPost`].
        id: u64,
    },
    /// A blocking allreduce of `doubles` values.
    ArBlocking {
        /// Payload size in f64 values.
        doubles: usize,
    },
    /// Convergence check: records the relative residual at this point so the
    /// replay can emit a `(time, residual)` trajectory (paper Figure 5).
    ResCheck {
        /// Relative residual norm at this check.
        relres: f64,
    },
}

/// A recorded solver execution: the operation list plus the matrix profiles
/// the operations refer to.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    /// Global problem dimension (vector length before partitioning).
    pub nrows: usize,
    /// Registered matrix workload profiles.
    pub profiles: Vec<MatrixProfile>,
    /// The operation sequence.
    pub ops: Vec<Op>,
}

impl OpTrace {
    /// An empty trace for a problem of dimension `nrows`.
    pub fn new(nrows: usize) -> Self {
        OpTrace {
            nrows,
            profiles: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Registers a matrix profile, returning its index for [`Op::Spmv`].
    pub fn register_matrix(&mut self, profile: MatrixProfile) -> usize {
        self.profiles.push(profile);
        self.profiles.len() - 1
    }

    /// Appends an operation.
    #[inline]
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Counts operations of each communication-relevant type:
    /// `(spmv, pc, blocking allreduces, non-blocking allreduces)`.
    pub fn comm_counts(&self) -> (usize, usize, usize, usize) {
        let mut spmv = 0;
        let mut pc = 0;
        let mut blocking = 0;
        let mut nonblocking = 0;
        for op in &self.ops {
            match op {
                Op::Spmv { .. } => spmv += 1,
                Op::Mpk { depth, .. } => spmv += depth,
                Op::Pc { .. } => pc += 1,
                Op::ArBlocking { .. } => blocking += 1,
                Op::ArPost { .. } => nonblocking += 1,
                _ => {}
            }
        }
        (spmv, pc, blocking, nonblocking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Layout;

    #[test]
    fn trace_records_and_counts() {
        let mut t = OpTrace::new(1000);
        let m = t.register_matrix(MatrixProfile::stencil3d(10, 10, 10, 1, 7000, Layout::Box));
        t.push(Op::Spmv { matrix: m });
        t.push(Op::ArPost { id: 0, doubles: 6 });
        t.push(Op::Spmv { matrix: m });
        t.push(Op::ArWait { id: 0 });
        t.push(Op::ArBlocking { doubles: 2 });
        t.push(Op::Pc {
            matrix: m,
            flops_per_row: 1.0,
            bytes_per_row: 24.0,
            comm_rounds: 0,
        });
        assert_eq!(t.len(), 6);
        assert_eq!(t.comm_counts(), (2, 1, 1, 1));
    }
}

//! A thread-backed, MPI-like message-passing runtime.
//!
//! The reproduction environment has no MPI, so this module provides the
//! substrate the paper's implementation assumes: `P` ranks with private
//! memory (by convention — each thread only touches its own vectors),
//! point-to-point sends/receives for halo exchange, and blocking **and
//! non-blocking** sum-allreduces with the semantics of `MPI_Allreduce` /
//! `MPI_Iallreduce` + `MPI_Wait`:
//!
//! * every rank must call collectives in the same order (SPMD);
//! * a non-blocking reduction makes progress as soon as contributions
//!   arrive — a rank that posts early may compute while stragglers catch up;
//! * reduction order is **deterministic** (contributions are summed in rank
//!   order), so results are identical run to run and independent of thread
//!   scheduling.
//!
//! [`RankCtx`] implements [`Context`] on top of this runtime, so the *same
//! solver code* that produces the scaling figures under [`SimCtx`] runs here
//! as a genuinely distributed program; integration tests assert the two
//! engines converge to the same solution.
//!
//! [`SimCtx`]: crate::context::SimCtx

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

use pscg_obs as obs;
use pscg_obs::SpanKind;
use pscg_sparse::partition::{halo_plan, HaloPlan, RowBlockPartition};
use pscg_sparse::{kernels, CsrMatrix};

use crate::context::{Context, OpCounters, ReduceHandle};
use crate::trace::LocalKind;

/// State of one collective operation, keyed by sequence number.
struct ArEntry {
    contribs: Vec<Option<Vec<f64>>>,
    ndeposited: usize,
    result: Option<Vec<f64>>,
    nread: usize,
}

#[derive(Default)]
struct ArState {
    ops: HashMap<u64, ArEntry>,
}

struct Mailbox {
    slots: Mutex<HashMap<(usize, u64), Vec<f64>>>,
    cv: Condvar,
}

/// The shared communication world for `p` ranks.
pub struct World {
    p: usize,
    ar: Mutex<ArState>,
    ar_cv: Condvar,
    mail: Vec<Mailbox>,
}

impl World {
    /// Creates a world of `p` ranks.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "world needs at least one rank");
        World {
            p,
            ar: Mutex::new(ArState::default()),
            ar_cv: Condvar::new(),
            mail: (0..p)
                .map(|_| Mailbox {
                    slots: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.p
    }

    /// Deposits this rank's contribution to collective `seq`; does not block.
    fn ar_post(&self, seq: u64, rank: usize, vals: &[f64]) {
        let mut st = self.ar.lock().unwrap();
        let entry = st.ops.entry(seq).or_insert_with(|| ArEntry {
            contribs: vec![None; self.p],
            ndeposited: 0,
            result: None,
            nread: 0,
        });
        // pscg-lint: allow(panic-in-hot-path, double-posting is an engine protocol bug; this assert is its detection oracle)
        assert!(
            entry.contribs[rank].is_none(),
            "rank {rank} double-posted collective {seq}"
        );
        entry.contribs[rank] = Some(vals.to_vec());
        entry.ndeposited += 1;
        if entry.ndeposited == self.p {
            // Deterministic combine: sum in rank order.
            let mut acc = vec![0.0f64; vals.len()];
            for c in entry.contribs.iter() {
                let c = c.as_ref().expect("all contributions present"); // pscg-lint: allow(panic-in-hot-path, ndeposited == p guarantees every contribution slot is filled)
                assert_eq!(c.len(), acc.len(), "mismatched allreduce payload lengths");
                for (a, v) in acc.iter_mut().zip(c) {
                    *a += v;
                }
            }
            entry.result = Some(acc);
            self.ar_cv.notify_all();
        }
    }

    /// Blocks until collective `seq` completes; returns the global sums.
    fn ar_wait(&self, seq: u64) -> Vec<f64> {
        let mut st = self.ar.lock().unwrap();
        loop {
            if st.ops.get(&seq).and_then(|e| e.result.as_ref()).is_some() {
                break;
            }
            st = self.ar_cv.wait(st).unwrap();
        }
        let entry = st.ops.get_mut(&seq).unwrap(); // pscg-lint: allow(panic-in-hot-path, the wait loop above only exits once the entry and its result exist)
        let out = entry.result.clone().unwrap(); // pscg-lint: allow(panic-in-hot-path, the wait loop above only exits once the entry and its result exist)
        entry.nread += 1;
        if entry.nread == self.p {
            st.ops.remove(&seq);
        }
        out
    }

    /// Sends `data` to `dst` under `(src, tag)`; non-blocking (buffered).
    pub fn send(&self, src: usize, dst: usize, tag: u64, data: Vec<f64>) {
        let mb = &self.mail[dst];
        let mut slots = mb.slots.lock().unwrap();
        let prev = slots.insert((src, tag), data);
        assert!(
            prev.is_none(),
            "duplicate message (src {src}, tag {tag}) to {dst}"
        );
        mb.cv.notify_all();
    }

    /// Receives the message sent to `me` by `src` under `tag`; blocks.
    pub fn recv(&self, me: usize, src: usize, tag: u64) -> Vec<f64> {
        let mb = &self.mail[me];
        let mut slots = mb.slots.lock().unwrap();
        loop {
            if let Some(data) = slots.remove(&(src, tag)) {
                return data;
            }
            slots = mb.cv.wait(slots).unwrap();
        }
    }
}

/// A rank's endpoint: its id plus per-rank collective sequencing.
pub struct Endpoint<'w> {
    world: &'w World,
    rank: usize,
    ar_seq: u64,
    p2p_tag: u64,
    /// Local contributions of posted-but-unwaited collectives, kept so
    /// [`Endpoint::peek_pending`] can model the read-before-wait bug class.
    posted: HashMap<u64, Vec<f64>>,
}

impl<'w> Endpoint<'w> {
    /// Creates the endpoint for `rank`.
    pub fn new(world: &'w World, rank: usize) -> Self {
        assert!(rank < world.nranks());
        Endpoint {
            world,
            rank,
            ar_seq: 0,
            p2p_tag: 0,
            posted: HashMap::new(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.world.nranks()
    }

    /// Posts a non-blocking allreduce; returns its sequence number.
    pub fn iallreduce(&mut self, vals: &[f64]) -> u64 {
        let seq = self.ar_seq;
        self.ar_seq += 1;
        self.posted.insert(seq, vals.to_vec());
        self.world.ar_post(seq, self.rank, vals);
        seq
    }

    /// Waits for a posted allreduce.
    pub fn wait(&mut self, seq: u64) -> Vec<f64> {
        self.posted.remove(&seq);
        self.world.ar_wait(seq)
    }

    /// This rank's **local** contribution to a pending collective — what a
    /// buggy solver sees when it reads a reduction before waiting. Genuinely
    /// rank-dependent on `P > 1`, which is the point.
    pub fn peek_pending(&self, seq: u64) -> Vec<f64> {
        self.posted
            .get(&seq)
            .expect("peek of unknown or already-completed collective") // pscg-lint: allow(panic-in-hot-path, peeking an unknown collective is an engine API-contract bug, not a runtime fault)
            .clone()
    }

    /// Blocking allreduce.
    pub fn allreduce(&mut self, vals: &[f64]) -> Vec<f64> {
        let seq = self.iallreduce(vals);
        self.wait(seq)
    }

    /// Barrier: an empty allreduce.
    pub fn barrier(&mut self) {
        self.allreduce(&[]);
    }

    /// Fresh point-to-point tag, advanced identically on all ranks as long
    /// as they call the same communication operations in the same order.
    pub fn next_tag(&mut self) -> u64 {
        let t = self.p2p_tag;
        self.p2p_tag += 1;
        t
    }

    /// Sends to `dst` with an explicit tag.
    pub fn send(&self, dst: usize, tag: u64, data: Vec<f64>) {
        self.world.send(self.rank, dst, tag, data);
    }

    /// Receives from `src` with an explicit tag.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        self.world.recv(self.rank, src, tag)
    }
}

/// Runs `f(rank)` on `p` scoped threads and collects the results in rank
/// order. Panics in any rank propagate.
pub fn run_spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &World) -> R + Sync,
{
    let world = World::new(p);
    let mut out: Vec<Option<R>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let world = &world;
        let f = &f;
        let handles: Vec<_> = (0..p)
            .map(|rank| scope.spawn(move || f(rank, world)))
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("SPMD rank panicked")); // pscg-lint: allow(panic-in-hot-path, propagates a rank panic to the harness; masking would hide the failure)
        }
    });
    out.into_iter().map(|r| r.unwrap()).collect() // pscg-lint: allow(panic-in-hot-path, every slot is filled by the join loop above)
}

/// Local preconditioners available to the distributed engine. (Global
/// preconditioners — multigrid and friends — run under the sim engine; the
/// thread engine supports the processor-local ones, which is also what
/// PETSc's defaults do for `PCJACOBI`.)
pub enum LocalPc {
    /// No preconditioning (`u = r`).
    None,
    /// Pointwise Jacobi with the local slice of `diag(A)⁻¹`.
    Jacobi(Vec<f64>),
}

/// One rank of the distributed solver engine; implements [`Context`] over
/// the thread runtime.
pub struct RankCtx<'w, 'a> {
    ep: Endpoint<'w>,
    a: &'a CsrMatrix,
    lo: usize,
    hi: usize,
    plan: pscg_sparse::partition::RankPlan,
    pc: LocalPc,
    /// Global-length gather buffer for SpMV inputs. Only the owned window
    /// and the ghost entries named in the halo plan are ever written or
    /// read, so the communication volume is the true halo volume; the full
    /// allocation just keeps global column indexing simple.
    xbuf: Vec<f64>,
    counters: OpCounters,
}

impl<'w, 'a> RankCtx<'w, 'a> {
    /// Builds the context for `rank` of `p` over matrix `a`.
    pub fn new(
        world: &'w World,
        rank: usize,
        a: &'a CsrMatrix,
        part: &RowBlockPartition,
        full_plan: &HaloPlan,
        pc: LocalPc,
    ) -> Self {
        let (lo, hi) = part.range(rank);
        if let LocalPc::Jacobi(d) = &pc {
            assert_eq!(d.len(), hi - lo, "Jacobi diagonal must be the local slice");
        }
        RankCtx {
            ep: Endpoint::new(world, rank),
            a,
            lo,
            hi,
            plan: full_plan.ranks[rank].clone(),
            pc,
            xbuf: vec![0.0; a.ncols()],
            counters: OpCounters::default(),
        }
    }

    /// Convenience: builds the partition, halo plan and per-rank Jacobi
    /// slices for `p` ranks — everything `run_spmd` callers need.
    pub fn prepare(a: &CsrMatrix, p: usize) -> (RowBlockPartition, HaloPlan) {
        let part = RowBlockPartition::balanced(a.nrows(), p);
        let plan = halo_plan(a, &part);
        (part, plan)
    }

    /// The local row range `[lo, hi)`.
    pub fn local_range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }
}

impl Context for RankCtx<'_, '_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn vec_len(&self) -> usize {
        self.hi - self.lo
    }

    fn rank(&self) -> usize {
        self.ep.rank()
    }

    fn nranks(&self) -> usize {
        self.ep.nranks()
    }

    fn matrix_nnz(&self) -> usize {
        self.a.nnz()
    }

    fn pc_cost_rates(&self) -> (f64, f64) {
        match &self.pc {
            LocalPc::None => (0.0, 0.0),
            // The Jacobi apply's declared cost (see `pscg_precond::Jacobi`).
            LocalPc::Jacobi(_) => (1.0, 24.0),
        }
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        let _sp = obs::span_arg(SpanKind::Spmv, pscg_sparse::spmv_format().to_code() as u64);
        assert_eq!(x.len(), self.vec_len());
        assert_eq!(y.len(), self.vec_len());
        // Halo exchange: push our values that neighbours need, pull ghosts.
        let tag = self.ep.next_tag();
        self.xbuf[self.lo..self.hi].copy_from_slice(x);
        for (dst, rows) in &self.plan.send {
            let data: Vec<f64> = rows.iter().map(|&g| x[g - self.lo]).collect();
            self.ep.send(*dst, tag, data);
        }
        for (src, cols) in &self.plan.recv {
            let data = self.ep.recv(*src, tag);
            debug_assert_eq!(data.len(), cols.len());
            for (&g, v) in cols.iter().zip(data) {
                self.xbuf[g] = v;
            }
        }
        self.a.spmv_rows(self.lo, self.hi, &self.xbuf, y);
        self.counters.spmv += 1;
    }

    fn pc_apply(&mut self, r: &[f64], u: &mut [f64]) {
        let _sp = obs::span(SpanKind::Pc);
        match &self.pc {
            LocalPc::None => u.copy_from_slice(r),
            LocalPc::Jacobi(d) => kernels::hadamard(d, r, u),
        }
        self.counters.pc += 1;
    }

    fn allreduce(&mut self, vals: &[f64]) -> Vec<f64> {
        let _sp = obs::span(SpanKind::Allreduce);
        self.counters.blocking_allreduce += 1;
        self.counters.reduced_doubles += vals.len() as u64;
        self.ep.allreduce(vals)
    }

    fn iallreduce(&mut self, vals: &[f64]) -> ReduceHandle {
        self.counters.nonblocking_allreduce += 1;
        self.counters.reduced_doubles += vals.len() as u64;
        let id = self.ep.iallreduce(vals);
        // Rank threads post and wait on their own thread, so the window
        // accounting in `pscg_obs` stays per-thread-correct here too.
        obs::span::window_open(id);
        ReduceHandle { id }
    }

    fn wait(&mut self, h: ReduceHandle) -> Vec<f64> {
        let vals = self.ep.wait(h.id);
        obs::span::window_close(h.id);
        vals
    }

    fn peek_pending(&mut self, h: &ReduceHandle) -> Vec<f64> {
        self.ep.peek_pending(h.id)
    }

    fn charge_local(&mut self, kind: LocalKind, flops_per_row: f64, _bytes_per_row: f64) {
        let n = self.vec_len() as f64;
        match kind {
            LocalKind::Vma => self.counters.vma_flops += flops_per_row * n,
            LocalKind::Dot => self.counters.dot_flops += flops_per_row * n,
        }
    }

    fn charge_scalar(&mut self, flops: f64) {
        self.counters.scalar_flops += flops;
    }

    fn note_residual(&mut self, _relres: f64) {}

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut OpCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    #[test]
    fn allreduce_is_deterministic_sum_in_rank_order() {
        let sums = run_spmd(4, |rank, world| {
            let mut ep = Endpoint::new(world, rank);
            ep.allreduce(&[rank as f64, 1.0])
        });
        for s in sums {
            assert_eq!(s, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn nonblocking_allreduce_overlaps() {
        let res = run_spmd(3, |rank, world| {
            let mut ep = Endpoint::new(world, rank);
            let h = ep.iallreduce(&[1.0]);
            // "Useful work" between post and wait.
            let local: f64 = (0..1000).map(|i| (i * (rank + 1)) as f64).sum();
            let g = ep.wait(h);
            (g[0], local)
        });
        for (g, _) in res {
            assert_eq!(g, 3.0);
        }
    }

    #[test]
    fn peek_pending_is_rank_local_not_reduced() {
        let res = run_spmd(3, |rank, world| {
            let mut ep = Endpoint::new(world, rank);
            let h = ep.iallreduce(&[rank as f64 + 1.0]);
            let peeked = ep.peek_pending(h)[0];
            let reduced = ep.wait(h)[0];
            (peeked, reduced)
        });
        for (rank, (peeked, reduced)) in res.into_iter().enumerate() {
            // The peeked value is this rank's contribution — silently wrong
            // to compute with — while the waited value is the global sum.
            assert_eq!(peeked, rank as f64 + 1.0);
            assert_eq!(reduced, 6.0);
        }
    }

    #[test]
    fn sequence_of_collectives_matches_across_ranks() {
        let res = run_spmd(2, |rank, world| {
            let mut ep = Endpoint::new(world, rank);
            let a = ep.allreduce(&[1.0])[0];
            let h1 = ep.iallreduce(&[2.0]);
            let h2 = ep.iallreduce(&[10.0 * (rank + 1) as f64]);
            let b = ep.wait(h2)[0];
            let c = ep.wait(h1)[0];
            (a, b, c)
        });
        for (a, b, c) in res {
            assert_eq!((a, b, c), (2.0, 30.0, 4.0));
        }
    }

    #[test]
    fn p2p_send_recv_roundtrip() {
        let res = run_spmd(2, |rank, world| {
            let mut ep = Endpoint::new(world, rank);
            let tag = ep.next_tag();
            let peer = 1 - rank;
            ep.send(peer, tag, vec![rank as f64; 3]);
            ep.recv(peer, tag)
        });
        assert_eq!(res[0], vec![1.0; 3]);
        assert_eq!(res[1], vec![0.0; 3]);
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let g = Grid3::new(4, 4, 6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let expect = a.mul_vec(&x);
        for p in [1usize, 2, 3, 5] {
            let (part, plan) = RankCtx::prepare(&a, p);
            let pieces = run_spmd(p, |rank, world| {
                let mut ctx = RankCtx::new(world, rank, &a, &part, &plan, LocalPc::None);
                let (lo, hi) = ctx.local_range();
                let xl = x[lo..hi].to_vec();
                let mut yl = vec![0.0; hi - lo];
                ctx.spmv(&xl, &mut yl);
                yl
            });
            let got: Vec<f64> = pieces.into_iter().flatten().collect();
            assert_eq!(got, expect, "p = {p}");
        }
    }

    #[test]
    fn distributed_dot_matches_serial_to_roundoff() {
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let serial: f64 = x.iter().map(|v| v * v).sum();
        for p in [2usize, 4, 7] {
            let part = RowBlockPartition::balanced(n, p);
            let sums = run_spmd(p, |rank, world| {
                let mut ep = Endpoint::new(world, rank);
                let (lo, hi) = part.range(rank);
                let local = kernels::dot(&x[lo..hi], &x[lo..hi]);
                ep.allreduce(&[local])[0]
            });
            for s in sums {
                assert!((s - serial).abs() < 1e-9 * serial.abs());
            }
        }
    }
}

//! Deterministic shared-memory execution layer for the kernel engine.
//!
//! The offline build constraint (DESIGN.md §5) rules out rayon, so this
//! crate provides the small subset the kernels need, on `std::sync` only:
//!
//! * [`Pool`] — a persistent chunked thread pool. A job is a `Fn(usize)`
//!   evaluated for indices `0..njobs`; the submitting thread participates,
//!   so `Pool::new(1)` spawns no workers and runs everything inline.
//! * [`Pool::global`] — a process-wide pool sized from the `PSCG_THREADS`
//!   environment variable (default: all available cores), replaceable at
//!   runtime with [`set_global_threads`].
//! * [`knobs`] — the chunk-size knobs of the determinism contract. Chunk
//!   boundaries depend only on problem shape and these knobs — never on the
//!   thread count — and every reduction combines its per-chunk partials in
//!   chunk order, so results are bitwise identical at any thread count.
//! * [`DisjointMut`] — shared mutable access to *disjoint* ranges of one
//!   slice from several chunk jobs.
//!
//! Nested submissions (e.g. a parallel kernel called from inside the
//! thread-backed SPMD engine, whose rank threads may call [`Pool::run`]
//! concurrently) never deadlock: the pool admits one job at a time and any
//! contending submitter simply runs its job inline on its own thread —
//! legal precisely because chunking is thread-count independent.
//!
//! The dispatch protocol itself is verified two ways (DESIGN.md §9): an
//! exhaustive model checker in `pscg-check` explores every interleaving of
//! a faithful transition-system model at bounded configurations, and the
//! [`sync_trace`] module records the protocol's synchronization events plus
//! buffer accesses at runtime so a vector-clock race detector can check the
//! disjoint-write contract on real kernel schedules.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};
use std::thread::JoinHandle;

/// Raw pointer to the current job closure; only dereferenced while the
/// submitting [`Pool::run`] call is blocked, which keeps the borrow alive.
#[derive(Clone, Copy)]
struct JobFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (it is invoked from several threads) and the
// pointer itself is only shared, never used to move the closure.
unsafe impl Send for JobFn {}
unsafe impl Sync for JobFn {}

/// One submitted job: the closure plus its index space. Progress lives in
/// [`Shared`]'s pool-lifetime atomics, so publishing a job allocates
/// nothing.
#[derive(Clone, Copy)]
struct Job {
    f: JobFn,
    njobs: usize,
}

/// Worker-visible pool state.
struct State {
    /// Bumped once per submission so sleeping workers notice new work.
    epoch: u32,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    /// Process-unique pool id, tagging this pool's [`sync_trace`] events so
    /// the race detector never conflates epochs of distinct pools.
    id: u64,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Packed `(epoch << 32) | next_index` claim word of the active job.
    /// The epoch tag makes a claim by a stale worker impossible: its
    /// compare-exchange fails the moment a new job resets the word. The
    /// counters live here — not in per-job `Arc`s — so `run` performs **no
    /// allocation** on any path. That is deliberate and load-bearing: the
    /// trace engine interns buffer identities by storage address, so the
    /// engine must not let heap layout depend on the pool width or on
    /// which thread happens to free a job last.
    claim: AtomicU64,
    /// Completed index count of the active job; the last finisher wakes
    /// the submitter. Only epoch-verified claimants ever increment it.
    done: AtomicUsize,
}

/// A persistent chunked thread pool (see module docs).
pub struct Pool {
    shared: Arc<Shared>,
    /// Admits one job at a time; contenders fall back to inline execution.
    submit: Mutex<()>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `threads` execution lanes (the submitting thread
    /// counts as one, so `threads - 1` workers are spawned; `0` is clamped
    /// to `1`).
    pub fn new(threads: usize) -> Pool {
        static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            done: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Pool {
            shared,
            submit: Mutex::new(()),
            threads,
            workers,
        }
    }

    /// Number of execution lanes (including the submitting thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Process-unique id tagging this pool's [`sync_trace`] events.
    #[inline]
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Runs `f(i)` for every `i in 0..njobs`, returning when all are done.
    ///
    /// Job indices are claimed dynamically, so `f` must be safe to call from
    /// any thread in any order — deterministic kernels get their ordering
    /// from fixed chunk boundaries plus an ordered combine, not from the
    /// execution schedule. Runs inline (serially, in index order) when the
    /// pool has one lane, when `njobs <= 1`, or when another job is already
    /// in flight on this pool.
    pub fn run(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(
            njobs < u32::MAX as usize,
            "job index space exceeds the claim word"
        );
        stats::JOBS.fetch_add(1, Ordering::Relaxed);
        stats::INDICES.fetch_add(njobs as u64, Ordering::Relaxed);
        if njobs <= 1 || self.workers.is_empty() {
            stats::INLINE_SMALL.fetch_add(1, Ordering::Relaxed);
            for i in 0..njobs {
                f(i);
            }
            return;
        }
        let _admit = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                // Nested or concurrent submission: run inline.
                stats::INLINE_NESTED.fetch_add(1, Ordering::Relaxed);
                for i in 0..njobs {
                    f(i);
                }
                return;
            }
            Err(TryLockError::Poisoned(e)) => panic!("pool submit lock poisoned: {e}"), // pscg-lint: allow(panic-in-hot-path, a poisoned submit lock means a worker already panicked; propagate, do not mask)
        };
        stats::PARALLEL.fetch_add(1, Ordering::Relaxed);
        // SAFETY: lifetime erasure only — the pointer is dereferenced solely
        // while this call blocks below, and the epoch-tagged claim word
        // guarantees no worker can claim (and hence call) it afterwards.
        let f_erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let epoch = {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch = st.epoch.wrapping_add(1);
            // Reset progress before the new claim word becomes visible; no
            // stale worker can touch either (its epoch-tagged claims fail).
            self.shared.done.store(0, Ordering::Release);
            self.shared
                .claim
                .store(u64::from(st.epoch) << 32, Ordering::Release);
            st.job = Some(Job {
                f: JobFn(f_erased),
                njobs,
            });
            self.shared.work_cv.notify_all();
            st.epoch
        };
        sync_trace::record(sync_trace::SyncEvent::EpochPublish {
            pool: self.shared.id,
            epoch,
            njobs,
        });
        // The submitter works too.
        while let Some(i) = self.shared.claim_index(epoch, njobs) {
            f(i);
            self.shared.finish_index(epoch, njobs);
        }
        let mut st = self.shared.state.lock().unwrap();
        while self.shared.done.load(Ordering::Acquire) < njobs {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        // Drop the job so the stale closure pointer can never be re-read.
        st.job = None;
        drop(st);
        sync_trace::record(sync_trace::SyncEvent::PoolJoin {
            pool: self.shared.id,
            epoch,
        });
    }

    /// Runs `f(i)` for `i in 0..njobs` and collects the results **in index
    /// order** — the ordered-combine primitive of the determinism contract.
    pub fn run_map<R, F>(&self, njobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        struct Slot<T>(UnsafeCell<Option<T>>);
        // SAFETY: each job index writes only its own slot.
        unsafe impl<T: Send> Sync for Slot<T> {}
        let slots: Vec<Slot<R>> = (0..njobs).map(|_| Slot(UnsafeCell::new(None))).collect();
        self.run(njobs, &|i| {
            // SAFETY: slot `i` is written exactly once, by job `i`.
            unsafe { *slots[i].0.get() = Some(f(i)) };
        });
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("pool job skipped an index")) // pscg-lint: allow(panic-in-hot-path, pool contract: every index is written exactly once by its job)
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Shared {
    /// Claims the next index of the job tagged `epoch`: `None` when that
    /// job is exhausted or no longer the active one. An epoch-verified
    /// claim pins the submitting `run` call — it cannot return until the
    /// claimed index is reported done — which is what keeps the erased
    /// closure pointer alive across the claimant's call.
    fn claim_index(&self, epoch: u32, njobs: usize) -> Option<usize> {
        let mut cur = self.claim.load(Ordering::Acquire);
        loop {
            if (cur >> 32) as u32 != epoch {
                return None;
            }
            let i = (cur & u64::from(u32::MAX)) as usize;
            if i >= njobs {
                return None;
            }
            match self.claim.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    sync_trace::record(sync_trace::SyncEvent::ClaimAcquire {
                        pool: self.id,
                        epoch,
                        index: i,
                    });
                    return Some(i);
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Reports one claimed index complete; the last finisher wakes the
    /// submitter. Locking the state first keeps the notify from racing the
    /// submitter between its `done` check and its wait.
    fn finish_index(&self, epoch: u32, njobs: usize) {
        let done_after = self.done.fetch_add(1, Ordering::AcqRel) + 1;
        sync_trace::record(sync_trace::SyncEvent::FinishIndex {
            pool: self.id,
            epoch,
            done_after,
        });
        if done_after == njobs {
            let _st = self.state.lock().unwrap();
            self.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u32;
    loop {
        let (job, epoch) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(j) = st.job {
                        break (j, st.epoch);
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        while let Some(i) = shared.claim_index(epoch, job.njobs) {
            // SAFETY: the claim was epoch-verified, so the submitter blocks
            // in `run` at least until `finish_index` below — the closure
            // outlives this dereference.
            unsafe { (*job.f.0)(i) };
            shared.finish_index(epoch, job.njobs);
        }
    }
}

/// The process-wide pool, lazily sized from `PSCG_THREADS` (default: all
/// available cores).
pub fn global() -> Arc<Pool> {
    global_slot().lock().unwrap().clone()
}

/// Number of lanes of the current global pool.
pub fn global_threads() -> usize {
    global().threads()
}

/// Replaces the global pool with one of `threads` lanes. Kernels already
/// holding the old pool finish on it; new calls see the new size.
pub fn set_global_threads(threads: usize) {
    *global_slot().lock().unwrap() = Arc::new(Pool::new(threads));
}

fn global_slot() -> &'static Mutex<Arc<Pool>> {
    static GLOBAL: OnceLock<Mutex<Arc<Pool>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Arc::new(Pool::new(default_threads()))))
}

/// Thread count the global pool starts with: `PSCG_THREADS` if set and
/// positive, otherwise the number of available cores.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PSCG_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Chunk-size knobs of the determinism contract.
///
/// Chunk boundaries — and therefore every reduction tree — are functions of
/// the problem shape and these knobs only. Changing a knob (or its
/// environment override, read once on first use) changes rounding the same
/// way at every thread count; the thread count itself never does.
pub mod knobs {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Default nnz per SpMV row chunk (`PSCG_SPMV_CHUNK_NNZ` overrides).
    pub const DEFAULT_SPMV_CHUNK_NNZ: usize = 1 << 16;
    /// Default rows per Gram/update chunk (`PSCG_GRAM_CHUNK_ROWS` overrides).
    pub const DEFAULT_GRAM_CHUNK_ROWS: usize = 4096;
    /// Default SELL-C-σ sorting-window rows (`PSCG_SELL_SIGMA` overrides).
    pub const DEFAULT_SELL_SIGMA: usize = 4096;
    /// Default *stored* nnz per symmetric-SpMV chunk (`PSCG_SYM_CHUNK_NNZ`
    /// overrides). Deliberately large: below it the symmetric kernel takes
    /// its serial in-place path and needs no scatter-slot scratch.
    pub const DEFAULT_SYM_CHUNK_NNZ: usize = 1 << 27;

    static SPMV_CHUNK_NNZ: AtomicUsize = AtomicUsize::new(0);
    static GRAM_CHUNK_ROWS: AtomicUsize = AtomicUsize::new(0);
    static SELL_SIGMA: AtomicUsize = AtomicUsize::new(0);
    static SYM_CHUNK_NNZ: AtomicUsize = AtomicUsize::new(0);

    fn get(cell: &AtomicUsize, env: &str, default: usize) -> usize {
        let v = cell.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        let init = std::env::var(env)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default);
        cell.store(init, Ordering::Relaxed);
        init
    }

    /// Target non-zeros per row chunk of the parallel SpMV.
    pub fn spmv_chunk_nnz() -> usize {
        get(
            &SPMV_CHUNK_NNZ,
            "PSCG_SPMV_CHUNK_NNZ",
            DEFAULT_SPMV_CHUNK_NNZ,
        )
    }

    /// Overrides [`spmv_chunk_nnz`] (0 is clamped to 1). Note: `CsrMatrix`
    /// caches its row partition on first SpMV, so set this before solving.
    pub fn set_spmv_chunk_nnz(nnz: usize) {
        SPMV_CHUNK_NNZ.store(nnz.max(1), Ordering::Relaxed);
    }

    /// Rows per chunk of the blocked Gram / fused update kernels.
    pub fn gram_chunk_rows() -> usize {
        get(
            &GRAM_CHUNK_ROWS,
            "PSCG_GRAM_CHUNK_ROWS",
            DEFAULT_GRAM_CHUNK_ROWS,
        )
    }

    /// Overrides [`gram_chunk_rows`] (0 is clamped to 1). This changes the
    /// fixed reduction tree, i.e. rounding — identically at every thread
    /// count.
    pub fn set_gram_chunk_rows(rows: usize) {
        GRAM_CHUNK_ROWS.store(rows.max(1), Ordering::Relaxed);
    }

    /// Rows per SELL-C-σ sorting window (σ). Rows are sorted by descending
    /// length *within* each window of σ consecutive rows; row placement —
    /// and therefore padding and the permutation — is a function of the
    /// matrix structure and this knob only.
    pub fn sell_sigma() -> usize {
        get(&SELL_SIGMA, "PSCG_SELL_SIGMA", DEFAULT_SELL_SIGMA)
    }

    /// Overrides [`sell_sigma`] (0 is clamped to 1). `CsrMatrix` caches its
    /// SELL representation on first use, so set this before the first
    /// SELL-format SpMV (or call `reset_par_rows`).
    pub fn set_sell_sigma(rows: usize) {
        SELL_SIGMA.store(rows.max(1), Ordering::Relaxed);
    }

    /// Target *stored* (upper + diagonal) nnz per chunk of the symmetric
    /// SpMV. Below one full chunk the kernel runs its serial in-place
    /// scatter; above, the deterministic two-phase scatter-slot reduction.
    pub fn sym_chunk_nnz() -> usize {
        get(&SYM_CHUNK_NNZ, "PSCG_SYM_CHUNK_NNZ", DEFAULT_SYM_CHUNK_NNZ)
    }

    /// Overrides [`sym_chunk_nnz`] (0 is clamped to 1). Same caching caveat
    /// as [`set_sell_sigma`].
    pub fn set_sym_chunk_nnz(nnz: usize) {
        SYM_CHUNK_NNZ.store(nnz.max(1), Ordering::Relaxed);
    }
}

/// Process-wide pool activity counters.
///
/// Every [`Pool::run`] call — on any pool instance — bumps these relaxed
/// atomics. They are observability only: nothing reads them on a kernel
/// path, and they influence neither chunking nor numerics. A few relaxed
/// `fetch_add`s per kernel invocation is noise next to the kernel itself.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static JOBS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static PARALLEL: AtomicU64 = AtomicU64::new(0);
    pub(crate) static INLINE_NESTED: AtomicU64 = AtomicU64::new(0);
    pub(crate) static INLINE_SMALL: AtomicU64 = AtomicU64::new(0);
    pub(crate) static INDICES: AtomicU64 = AtomicU64::new(0);

    /// A snapshot of the cumulative pool counters. Monotone: diff two
    /// snapshots (see [`PoolStats::delta_since`]) to measure an interval.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PoolStats {
        /// `Pool::run` submissions.
        pub jobs: u64,
        /// Submissions dispatched to worker threads.
        pub parallel_jobs: u64,
        /// Submissions run inline because the pool was busy with another
        /// job (the nested-submission fallback).
        pub inline_nested: u64,
        /// Submissions run inline because `njobs <= 1` or the pool has a
        /// single lane.
        pub inline_small: u64,
        /// Total job indices (chunks) executed.
        pub indices: u64,
    }

    impl PoolStats {
        /// Reads the current cumulative counters (relaxed loads — cheap
        /// enough to call per solver iteration).
        pub fn snapshot() -> PoolStats {
            PoolStats {
                jobs: JOBS.load(Ordering::Relaxed),
                parallel_jobs: PARALLEL.load(Ordering::Relaxed),
                inline_nested: INLINE_NESTED.load(Ordering::Relaxed),
                inline_small: INLINE_SMALL.load(Ordering::Relaxed),
                indices: INDICES.load(Ordering::Relaxed),
            }
        }

        /// Component-wise `self − earlier` (saturating, in case the two
        /// snapshots raced concurrent submissions).
        pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
            PoolStats {
                jobs: self.jobs.saturating_sub(earlier.jobs),
                parallel_jobs: self.parallel_jobs.saturating_sub(earlier.parallel_jobs),
                inline_nested: self.inline_nested.saturating_sub(earlier.inline_nested),
                inline_small: self.inline_small.saturating_sub(earlier.inline_small),
                indices: self.indices.saturating_sub(earlier.indices),
            }
        }

        /// Fraction of submissions that used worker threads (`NaN` when no
        /// jobs ran).
        pub fn utilization(&self) -> f64 {
            self.parallel_jobs as f64 / self.jobs as f64
        }
    }

    impl std::fmt::Display for PoolStats {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "jobs {} (parallel {}, inline-small {}, inline-nested {}), chunks {}",
                self.jobs, self.parallel_jobs, self.inline_small, self.inline_nested, self.indices
            )
        }
    }
}

/// Synchronization-event recording for the vector-clock race detector.
///
/// When enabled (off by default — one relaxed atomic load per event site
/// otherwise), the pool's dispatch protocol and the kernels' buffer
/// accesses append [`SyncRecord`]s to a process-global log:
///
/// * protocol events — `EpochPublish` (job published under the state
///   lock), `ClaimAcquire` (successful claim-word CAS), `FinishIndex`
///   (done-counter increment), `PoolJoin` (submitter observed all indices
///   done) — carry the data (`pool`, `epoch`, `index`/`done_after`) that
///   determines the protocol's happens-before edges, so the detector never
///   has to trust cross-thread log order (two threads may append their
///   records in the opposite order of their CASes);
/// * buffer events — `BufRead` / `BufWrite` with the storage address and
///   half-open element range — are emitted from [`DisjointMut::range`] and
///   the instrumented kernels, and `ReducePost` / `ReduceComplete` from
///   the engine's completion handling.
///
/// Within one thread the log order is program order (each thread appends
/// its own events in sequence); that is the only ordering the detector
/// reads off the log itself. Recording serializes on a mutex, which may
/// perturb the schedule being observed — like any dynamic race detector,
/// findings are per observed schedule; exhaustiveness over schedules is
/// the model checker's job (`pscg-check`).
pub mod sync_trace {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    /// One synchronization or memory-access event.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SyncEvent {
        /// A submitter published a job: epoch bumped, done reset, claim
        /// word rearmed, all under the pool's state lock.
        EpochPublish {
            /// Process-unique pool id.
            pool: u64,
            /// The new epoch.
            epoch: u32,
            /// Index space of the published job.
            njobs: usize,
        },
        /// A thread won the claim-word CAS for one job index.
        ClaimAcquire {
            /// Process-unique pool id.
            pool: u64,
            /// Epoch tag the CAS verified.
            epoch: u32,
            /// The claimed index.
            index: usize,
        },
        /// A thread reported a claimed index complete.
        FinishIndex {
            /// Process-unique pool id.
            pool: u64,
            /// Epoch of the finished job.
            epoch: u32,
            /// Value of the done counter *after* this increment (1-based),
            /// which totally orders the finishes of one epoch.
            done_after: usize,
        },
        /// The submitter observed `done == njobs` and reclaimed the job
        /// slot — everything the workers did is now ordered before it.
        PoolJoin {
            /// Process-unique pool id.
            pool: u64,
            /// Epoch that completed.
            epoch: u32,
        },
        /// A read of `[lo, hi)` of the buffer with storage address `buf`.
        BufRead {
            /// Storage address (the same identity `BufId` interning uses).
            buf: u64,
            /// First element read.
            lo: usize,
            /// One past the last element read.
            hi: usize,
        },
        /// A write of `[lo, hi)` of the buffer with storage address `buf`.
        BufWrite {
            /// Storage address (the same identity `BufId` interning uses).
            buf: u64,
            /// First element written.
            lo: usize,
            /// One past the last element written.
            hi: usize,
        },
        /// A non-blocking reduction was posted (engine completion handling).
        ReducePost {
            /// Engine-assigned reduction handle.
            id: u64,
        },
        /// A posted reduction's completion was consumed.
        ReduceComplete {
            /// Engine-assigned reduction handle.
            id: u64,
        },
    }

    /// One logged event with the ordinal of the thread that emitted it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SyncRecord {
        /// Process-wide thread ordinal (stable per OS thread).
        pub thread: u64,
        /// What happened.
        pub event: SyncEvent,
    }

    /// A drained synchronization trace.
    #[derive(Debug, Clone, Default)]
    pub struct SyncTrace {
        /// The records, in global append order (per-thread subsequences
        /// are in program order; cross-thread order is not meaningful).
        pub records: Vec<SyncRecord>,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static LOG: Mutex<Vec<SyncRecord>> = Mutex::new(Vec::new());

    /// Turns recording on or off. Enabling does not clear the log; use
    /// [`drain`] to start a fresh observation window.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Release);
    }

    /// True when events are being recorded.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Appends one event (no-op unless recording is enabled).
    #[inline]
    pub fn record(event: SyncEvent) {
        if !is_enabled() {
            return;
        }
        let rec = SyncRecord {
            thread: thread_ordinal(),
            event,
        };
        LOG.lock().unwrap().push(rec);
    }

    /// Convenience: records a [`SyncEvent::BufRead`] of a slice range.
    #[inline]
    pub fn record_read<T>(buf: &[T], lo: usize, hi: usize) {
        record(SyncEvent::BufRead {
            buf: buf.as_ptr() as u64,
            lo,
            hi,
        });
    }

    /// Takes the accumulated records, leaving the log empty.
    pub fn drain() -> SyncTrace {
        SyncTrace {
            records: std::mem::take(&mut *LOG.lock().unwrap()),
        }
    }

    /// Stable per-OS-thread ordinal (allocation order, process-wide).
    pub fn thread_ordinal() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
        }
        ORDINAL.with(|o| *o)
    }
}

/// Number of fixed-size chunks covering `len` items (`0` for an empty range).
#[inline]
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// Half-open item range of chunk `i` under fixed-size chunking.
#[inline]
pub fn chunk_range(len: usize, chunk: usize, i: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    let lo = i * chunk;
    (lo, len.min(lo + chunk))
}

/// Shared mutable access to disjoint ranges of one slice, for chunk jobs
/// that each write their own rows.
pub struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: range disjointness is the caller contract of `DisjointMut::range`;
// `T: Send` values may be written from any thread.
unsafe impl<T: Send> Send for DisjointMut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}

impl<'a, T> DisjointMut<'a, T> {
    /// Wraps a mutable slice for disjoint-range sharing.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sub-slice `[lo, hi)`.
    ///
    /// # Safety
    /// No two live sub-slices may overlap; the caller must hand each range
    /// to at most one concurrent job.
    ///
    /// When [`sync_trace`] recording is enabled, every call logs a
    /// `BufWrite` event, so the vector-clock race detector checks exactly
    /// this contract on the observed schedule.
    // The `&mut`-from-`&self` shape is the point of this type: it is the
    // caller-enforced disjointness cell the chunk jobs share (same idea as
    // `UnsafeCell`), hence the lint exemption.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn range(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len);
        sync_trace::record(sync_trace::SyncEvent::BufWrite {
            buf: self.ptr as u64,
            lo,
            hi,
        });
        // SAFETY: `lo <= hi <= len` bounds the range inside the wrapped
        // slice; non-overlap of live sub-slices is the caller contract
        // stated above, so no two `&mut` views alias.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }

    /// Storage address of the wrapped slice — the same buffer identity
    /// [`sync_trace`] events and `BufId` interning use. Scatter kernels
    /// pair this with [`sync_trace::record`] to log their per-element
    /// writes themselves (see [`DisjointMut::element`]).
    #[inline]
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// A single element `&mut`, **without** trace recording.
    ///
    /// Scatter kernels (SELL-C-σ's permuted output, the symmetric SpMV's
    /// slot buffer) write statically-disjoint but non-contiguous element
    /// sets, so [`DisjointMut::range`] would either over-claim (false race
    /// reports) or cost one trace call per element even when recording is
    /// off. Callers of this accessor must log their writes via
    /// [`sync_trace::record`] + [`DisjointMut::addr`] when
    /// [`sync_trace::is_enabled`] — exactly one `BufWrite` per written
    /// element range — to keep the race detector's view complete.
    ///
    /// # Safety
    /// No two live references (from this or [`DisjointMut::range`]) may
    /// target the same index; each index goes to at most one concurrent job.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn element(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` is in bounds; exclusivity is the caller
        // contract above.
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_every_index_once() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.run(100, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn run_map_preserves_index_order() {
        let pool = Pool::new(4);
        let out = pool.run_map(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for round in 0..50u64 {
            pool.run(8, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // Σ_round Σ_i (round + i) = 50·28 + 8·Σ rounds = 1400 + 8·1225.
        assert_eq!(total.load(Ordering::Relaxed), 1400 + 8 * 1225);
    }

    #[test]
    fn nested_run_falls_back_inline() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(8, &|outer| {
            pool.run(8, &|inner| {
                hits[outer * 8 + inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_jobs_run_inline() {
        let pool = Pool::new(4);
        let n = AtomicUsize::new(0);
        pool.run(0, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 0);
        pool.run(1, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunking_is_exhaustive_and_disjoint() {
        for (len, chunk) in [(0, 5), (1, 5), (4, 5), (5, 5), (6, 5), (103, 7)] {
            let n = chunk_count(len, chunk);
            let mut covered = 0;
            for i in 0..n {
                let (lo, hi) = chunk_range(len, chunk, i);
                assert_eq!(lo, covered, "gap before chunk {i}");
                assert!(hi > lo, "empty chunk {i}");
                covered = hi;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn disjoint_mut_writes_land() {
        let mut v = vec![0u32; 20];
        {
            let d = DisjointMut::new(&mut v);
            let pool = Pool::new(4);
            pool.run(4, &|c| {
                let (lo, hi) = chunk_range(20, 5, c);
                // SAFETY: fixed chunks are disjoint.
                let s = unsafe { d.range(lo, hi) };
                for (k, x) in s.iter_mut().enumerate() {
                    *x = (lo + k) as u32;
                }
            });
        }
        assert_eq!(v, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn sync_trace_records_the_dispatch_protocol() {
        // Recording and the log are process-global, so this is the one
        // test that drains it (a second drainer could steal our events);
        // concurrent tests may still interleave their own pools' events,
        // hence the filter by pool id below.
        let silent = Pool::new(2);
        silent.run(4, &|_| {});
        let pool = Pool::new(3);
        sync_trace::set_enabled(true);
        pool.run(5, &|_| {});
        sync_trace::set_enabled(false);
        let trace = sync_trace::drain();
        assert!(
            trace.records.iter().all(|r| match r.event {
                sync_trace::SyncEvent::EpochPublish { pool: p, .. } => p != silent.id(),
                _ => true,
            }),
            "a pool used while recording was disabled left events"
        );
        let mine: Vec<_> = trace
            .records
            .iter()
            .filter(|r| match r.event {
                sync_trace::SyncEvent::EpochPublish { pool: p, .. }
                | sync_trace::SyncEvent::ClaimAcquire { pool: p, .. }
                | sync_trace::SyncEvent::FinishIndex { pool: p, .. }
                | sync_trace::SyncEvent::PoolJoin { pool: p, .. } => p == pool.id(),
                _ => false,
            })
            .collect();
        let claims: Vec<usize> = mine
            .iter()
            .filter_map(|r| match r.event {
                sync_trace::SyncEvent::ClaimAcquire { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        let mut sorted = claims.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "every index claimed once");
        let finishes = mine
            .iter()
            .filter(|r| matches!(r.event, sync_trace::SyncEvent::FinishIndex { .. }))
            .count();
        assert_eq!(finishes, 5);
        assert_eq!(
            mine.iter()
                .filter(|r| matches!(r.event, sync_trace::SyncEvent::EpochPublish { .. }))
                .count(),
            1
        );
        assert_eq!(
            mine.iter()
                .filter(|r| matches!(r.event, sync_trace::SyncEvent::PoolJoin { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn stats_count_submissions_and_indices() {
        // The counters are process-global and other tests run concurrently,
        // so assert lower bounds on the deltas, not exact values.
        let before = stats::PoolStats::snapshot();
        let pool = Pool::new(4);
        pool.run(100, &|_| {});
        let serial = Pool::new(1);
        serial.run(10, &|_| {});
        let d = stats::PoolStats::snapshot().delta_since(&before);
        assert!(d.jobs >= 2);
        assert!(d.indices >= 110);
        assert!(d.parallel_jobs >= 1, "4-lane 100-index job uses workers");
        assert!(d.inline_small >= 1, "1-lane pool runs inline");
    }
}

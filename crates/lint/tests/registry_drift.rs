//! Drift-detection proof for the registry-sync passes, on synthetic
//! registries: a clean enum/table pair is quiet, and every drift shape
//! (wrong code, missing row, duplicate, malformed row, ALL mismatch)
//! produces the expected finding. Legal gaps (the real tree keeps 17
//! for the perf-report gate) stay quiet.

use pscg_lint::engine::DocFile;
use pscg_lint::{run, Finding, Workspace};
use std::path::PathBuf;

/// A minimal exit-code registry whose module-doc table matches its
/// enum, arms, Display names and ALL list.
const EXIT_SOURCE: &str = r#"
//! | code | class | meaning |
//! |------|-------|---------|
//! | 10 | Alpha | first |
//! | 11 | Beta | second |

pub enum FindingClass {
    Alpha,
    Beta,
}

impl FindingClass {
    pub const ALL: [FindingClass; 2] = [FindingClass::Alpha, FindingClass::Beta];

    pub fn exit_code(self) -> i32 {
        match self {
            FindingClass::Alpha => 10,
            FindingClass::Beta => 11,
        }
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingClass::Alpha => "alpha",
            FindingClass::Beta => "beta",
        };
        f.write_str(s)
    }
}
"#;

/// A README table keyed by Display names, consistent with EXIT_SOURCE.
const EXIT_README: &str = "\
| code | class | meaning |
|------|-------|---------|
| 10 | `alpha` | first |
| 11 | `beta` | second |
";

/// Runs the full pass set over a synthetic exit-code registry and
/// returns only the registry-exit-codes findings.
fn exit_findings(source: &str, readme: Option<&str>) -> Vec<Finding> {
    let mut ws = Workspace {
        root: PathBuf::from("."),
        files: Vec::new(),
        docs: Vec::new(),
    };
    ws.add_virtual("crates/analysis/src/exit_codes.rs", source);
    if let Some(text) = readme {
        ws.docs.push(DocFile {
            rel_path: "README.md".to_string(),
            text: text.to_string(),
        });
    }
    run(&ws)
        .findings
        .into_iter()
        .filter(|f| f.pass == "registry-exit-codes")
        .collect()
}

#[test]
fn consistent_registry_is_quiet() {
    let got = exit_findings(EXIT_SOURCE, Some(EXIT_README));
    assert!(got.is_empty(), "unexpected findings: {got:?}");
}

#[test]
fn doc_table_code_drift_is_caught() {
    let drifted = EXIT_SOURCE.replace("//! | 11 | Beta | second |", "//! | 12 | Beta | second |");
    let got = exit_findings(&drifted, None);
    assert!(
        got.iter()
            .any(|f| f.message.contains("table says Beta = 12, the code says 11")),
        "drift not reported: {got:?}"
    );
}

#[test]
fn doc_table_missing_row_is_caught() {
    let drifted = EXIT_SOURCE.replace("//! | 11 | Beta | second |\n", "");
    let got = exit_findings(&drifted, None);
    assert!(
        got.iter().any(|f| f.message.contains("missing Beta")),
        "missing row not reported: {got:?}"
    );
}

#[test]
fn doc_table_duplicate_code_is_caught() {
    let drifted = EXIT_SOURCE.replace("//! | 11 | Beta | second |", "//! | 10 | Beta | second |");
    let got = exit_findings(&drifted, None);
    assert!(
        got.iter().any(|f| f.message.contains("duplicate code 10")),
        "duplicate not reported: {got:?}"
    );
}

#[test]
fn doc_table_malformed_row_is_caught() {
    let drifted = EXIT_SOURCE.replace(
        "//! | 11 | Beta | second |",
        "//! | eleven | Beta | second |",
    );
    let got = exit_findings(&drifted, None);
    assert!(
        got.iter()
            .any(|f| f.message.contains("malformed exit-code row")),
        "malformed row not reported: {got:?}"
    );
}

#[test]
fn code_gap_is_legal() {
    // Mirror the real tree's reserved-but-unassigned 17: renumber Beta
    // to 13 on both sides so 11–12 are a gap, which must stay quiet.
    let gapped = EXIT_SOURCE.replace("11", "13");
    let got = exit_findings(&gapped, None);
    assert!(got.is_empty(), "gap wrongly reported: {got:?}");
}

#[test]
fn variant_missing_from_all_is_caught() {
    let drifted = EXIT_SOURCE.replace(
        "[FindingClass::Alpha, FindingClass::Beta]",
        "[FindingClass::Alpha]",
    );
    let got = exit_findings(&drifted, None);
    assert!(
        got.iter().any(|f| f
            .message
            .contains("FindingClass::Beta missing from FindingClass::ALL")),
        "ALL drift not reported: {got:?}"
    );
}

#[test]
fn readme_display_name_drift_is_caught() {
    let drifted = EXIT_README.replace("| 11 | `beta` |", "| 12 | `beta` |");
    let got = exit_findings(EXIT_SOURCE, Some(&drifted));
    assert!(
        got.iter().any(|f| f.rel_path == "README.md"
            && f.message.contains("table says beta = 12, the code says 11")),
        "README drift not reported: {got:?}"
    );
}

#[test]
fn missing_registry_sources_are_findings() {
    // An empty scan set must report all three registry sources as
    // missing rather than silently passing.
    let ws = Workspace {
        root: PathBuf::from("."),
        files: Vec::new(),
        docs: Vec::new(),
    };
    let report = run(&ws);
    for (pass, path) in [
        ("registry-exit-codes", "crates/analysis/src/exit_codes.rs"),
        ("registry-recovery-codes", "crates/core/src/resilience.rs"),
        ("registry-span-kinds", "crates/obs/src/span.rs"),
    ] {
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.pass == pass && f.rel_path == path),
            "{pass} did not report its missing source"
        );
    }
}

/// A minimal recovery-code registry and a doc table that matches it.
const RESILIENCE_SOURCE: &str = r#"
pub mod code {
    pub const REDUCE_RETRY: u64 = 1;
    pub const STALL_ABORT: u64 = 2;
}
"#;

const RECOVERY_DOC: &str = "\
| code | action | meaning |
|------|--------|---------|
| 1 | `REDUCE_RETRY` | re-issue the reduction |
| 2 | `STALL_ABORT` | give up after the stall window |
";

fn recovery_findings(source: &str, doc: &str) -> Vec<Finding> {
    let mut ws = Workspace {
        root: PathBuf::from("."),
        files: Vec::new(),
        docs: Vec::new(),
    };
    ws.add_virtual("crates/core/src/resilience.rs", source);
    ws.docs.push(DocFile {
        rel_path: "DESIGN.md".to_string(),
        text: doc.to_string(),
    });
    run(&ws)
        .findings
        .into_iter()
        .filter(|f| f.pass == "registry-recovery-codes")
        .collect()
}

#[test]
fn consistent_recovery_registry_is_quiet() {
    let got = recovery_findings(RESILIENCE_SOURCE, RECOVERY_DOC);
    assert!(got.is_empty(), "unexpected findings: {got:?}");
}

#[test]
fn recovery_code_drift_is_caught() {
    let drifted = RECOVERY_DOC.replace("| 2 | `STALL_ABORT` |", "| 3 | `STALL_ABORT` |");
    let got = recovery_findings(RESILIENCE_SOURCE, &drifted);
    assert!(
        got.iter().any(|f| f
            .message
            .contains("table says STALL_ABORT = 3, the code says 2")),
        "drift not reported: {got:?}"
    );
}

/// A minimal span-kind registry and the DESIGN table that matches it.
const SPAN_SOURCE: &str = r#"
pub enum SpanKind {
    Spmv,
    Dot,
}

impl SpanKind {
    pub const ALL: [SpanKind; 2] = [SpanKind::Spmv, SpanKind::Dot];

    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Spmv => "spmv",
            SpanKind::Dot => "dot",
        }
    }
}
"#;

const SPAN_DOC: &str = "\
| span kind | records |
|-----------|---------|
| `spmv` | local matvec |
| `dot` | reduction |
";

fn span_findings(source: &str, doc: &str) -> Vec<Finding> {
    let mut ws = Workspace {
        root: PathBuf::from("."),
        files: Vec::new(),
        docs: Vec::new(),
    };
    ws.add_virtual("crates/obs/src/span.rs", source);
    ws.docs.push(DocFile {
        rel_path: "DESIGN.md".to_string(),
        text: doc.to_string(),
    });
    run(&ws)
        .findings
        .into_iter()
        .filter(|f| f.pass == "registry-span-kinds")
        .collect()
}

#[test]
fn consistent_span_registry_is_quiet() {
    let got = span_findings(SPAN_SOURCE, SPAN_DOC);
    assert!(got.is_empty(), "unexpected findings: {got:?}");
}

#[test]
fn span_table_missing_kind_is_caught() {
    let drifted = SPAN_DOC.replace("| `dot` | reduction |\n", "");
    let got = span_findings(SPAN_SOURCE, &drifted);
    assert!(
        got.iter().any(|f| f.message.contains("missing `dot`")),
        "missing kind not reported: {got:?}"
    );
}

#[test]
fn span_table_unknown_kind_is_caught() {
    let drifted = SPAN_DOC.replace("| `dot` |", "| `dots` |");
    let got = span_findings(SPAN_SOURCE, &drifted);
    assert!(
        got.iter()
            .any(|f| f.message.contains("unknown kind `dots`")),
        "unknown kind not reported: {got:?}"
    );
}

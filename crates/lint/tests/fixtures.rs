//! Non-vacuity proof for the pattern passes.
//!
//! Every fixture under `fixtures/` marks the lines its pass must flag
//! with a trailing `lint-hit` comment and carries at least one inline
//! allow the engine must honor. The harness injects each fixture as a
//! virtual file (the real scanner skips `fixtures/`), runs the full
//! pass set, and requires the flagged lines to equal the marked lines
//! exactly — a pass that fires nowhere, fires on the wrong line, or
//! ignores its allow fails here. The plant gate and the clean-tree
//! invariant are pinned alongside.

use pscg_lint::plant::{run_with_plant, PLANTED_PASSES, PLANT_PATH};
use pscg_lint::{render_text, run, scan_workspace, Workspace};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn empty_workspace() -> Workspace {
    Workspace {
        root: workspace_root(),
        files: Vec::new(),
        docs: Vec::new(),
    }
}

/// Injects `fixtures/<fixture>` at `virtual_path`, runs every pass, and
/// checks the findings on that path are exactly the `lint-hit` lines,
/// all from `pass`, with `want_allows` valid inline allows parsed.
fn check_fixture(fixture: &str, virtual_path: &str, pass: &str, want_allows: usize) {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(fixture),
    )
    .expect("fixture readable");
    let mut ws = empty_workspace();
    ws.add_virtual(virtual_path, &text);
    let report = run(&ws);
    let got: BTreeSet<u32> = report
        .findings
        .iter()
        .filter(|f| f.rel_path == virtual_path)
        .inspect(|f| {
            assert_eq!(
                f.pass, pass,
                "{fixture}: unexpected pass {} at line {}: {}",
                f.pass, f.line, f.message
            );
        })
        .map(|f| f.line)
        .collect();
    let want: BTreeSet<u32> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("lint-hit"))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    assert!(
        !want.is_empty(),
        "{fixture}: fixture has no lint-hit markers"
    );
    assert_eq!(
        got, want,
        "{fixture}: flagged lines differ from the lint-hit markers"
    );
    assert_eq!(
        report.allows, want_allows,
        "{fixture}: valid inline allow count"
    );
}

#[test]
fn nan_clamp_fixture() {
    check_fixture(
        "nan_clamp.rs",
        "crates/core/src/methods/__fixture_nan_clamp__.rs",
        "nan-clamp",
        1,
    );
}

#[test]
fn unguarded_convergence_fixture() {
    check_fixture(
        "unguarded_convergence.rs",
        "crates/core/src/methods/__fixture_unguarded__.rs",
        "unguarded-convergence",
        1,
    );
}

#[test]
fn panic_hot_path_fixture() {
    check_fixture(
        "panic_hot_path.rs",
        "crates/par/src/__fixture_panic__.rs",
        "panic-in-hot-path",
        1,
    );
}

#[test]
fn unsafe_safety_fixture() {
    check_fixture(
        "unsafe_safety.rs",
        "crates/par/src/__fixture_unsafe__.rs",
        "unsafe-without-safety",
        1,
    );
}

#[test]
fn float_eq_fixture() {
    check_fixture(
        "float_eq.rs",
        "crates/core/src/__fixture_float_eq__.rs",
        "float-eq",
        1,
    );
}

#[test]
fn nondet_iteration_fixture() {
    check_fixture(
        "nondet_iteration.rs",
        "crates/sim/src/__fixture_nondet__.rs",
        "nondet-iteration",
        1,
    );
}

#[test]
fn allow_syntax_fixture() {
    // Malformed directives are findings themselves and register zero
    // valid allows.
    check_fixture(
        "allow_syntax.rs",
        "crates/core/src/__fixture_allow_syntax__.rs",
        "allow-syntax",
        0,
    );
}

/// The standing gate: the real tree scans clean. A new finding must be
/// fixed or carry a reasoned allow before it lands.
#[test]
fn whole_tree_scans_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace loads");
    assert!(
        report.findings.is_empty(),
        "lint findings in the tree:\n{}",
        render_text(&report)
    );
    assert!(
        report.files_scanned >= 100,
        "suspiciously few files scanned ({}): did the walker break?",
        report.files_scanned
    );
    assert!(
        report.allows >= 40,
        "inline allows vanished ({}): did directive parsing break?",
        report.allows
    );
}

/// The plant gate: every planted violation must be caught by its pass,
/// and the plant must not leak findings onto real files.
#[test]
fn plant_is_caught_by_every_code_pass() {
    let ws = Workspace::load(&workspace_root()).expect("workspace loads");
    let (report, escaped) = run_with_plant(ws);
    assert!(escaped.is_empty(), "plant escaped passes: {escaped:?}");
    let caught: BTreeSet<&str> = report
        .findings
        .iter()
        .filter(|f| f.rel_path == PLANT_PATH)
        .map(|f| f.pass)
        .collect();
    for pass in PLANTED_PASSES {
        assert!(caught.contains(pass), "plant not caught by {pass}");
    }
    assert!(
        report.findings.iter().all(|f| f.rel_path == PLANT_PATH),
        "plant run produced findings outside the planted file:\n{}",
        render_text(&report)
    );
}

//! The `--plant` non-vacuousness gate, mirroring `--chaos-plant`: a
//! known-bad source is injected into the scan set as a virtual file and
//! every code pass must fire on it, or the gate itself fails.

use crate::engine::{run, Finding, Report, Workspace};

/// Virtual path of the planted file. It sits under `crates/core/src/
/// methods/` so every scoped pass applies to it; the engine never writes
/// it to disk.
pub const PLANT_PATH: &str = "crates/core/src/methods/__planted__.rs";

/// Passes the plant must trigger (the code passes; registry passes audit
/// real files and are gated by their own drift tests).
pub const PLANTED_PASSES: [&str; 6] = [
    "nan-clamp",
    "unguarded-convergence",
    "panic-in-hot-path",
    "unsafe-without-safety",
    "float-eq",
    "nondet-iteration",
];

/// One seeded violation per code pass, in a compact solver-shaped
/// function.
pub const PLANT_SOURCE: &str = r#"
use std::collections::HashMap;

fn planted_solver(norm_sq: f64, bnorm: f64, threshold: f64, vals: &[f64]) -> f64 {
    let relres = norm_sq.max(0.0).sqrt() / bnorm;
    if relres < threshold {
        return relres;
    }
    let first = vals.first().unwrap();
    if *first == 0.0 {
        return 0.0;
    }
    let mut slots: HashMap<u64, f64> = HashMap::new();
    slots.insert(1, *first);
    let mut acc = 0.0;
    for (_k, v) in slots.iter() {
        acc += *v;
    }
    unsafe { core::ptr::read_volatile(&acc) }
}
"#;

/// Runs the engine with the plant injected. Returns the report plus the
/// list of planted passes that FAILED to fire on the planted file — an
/// empty list means the gate holds.
pub fn run_with_plant(mut ws: Workspace) -> (Report, Vec<&'static str>) {
    ws.add_virtual(PLANT_PATH, PLANT_SOURCE);
    let report = run(&ws);
    let fired: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rel_path == PLANT_PATH)
        .collect();
    let escaped: Vec<&'static str> = PLANTED_PASSES
        .iter()
        .copied()
        .filter(|p| !fired.iter().any(|f| f.pass == *p))
        .collect();
    (report, escaped)
}

//! The lint engine: workspace loading, pass execution, suppression
//! filtering and reporting.

use std::fs;
use std::path::{Path, PathBuf};

use crate::passes::all_passes;
use crate::source::SourceFile;

/// Reserved process exit code of the `lint-source` binary on findings.
/// Registered as `FindingClass::Lint` in `pscg-analysis::exit_codes`; the
/// `registry-exit-codes` pass keeps the two in sync.
pub const EXIT_LINT: i32 = 19;

/// A non-Rust documentation file the registry passes read (README.md,
/// DESIGN.md).
#[derive(Debug)]
pub struct DocFile {
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// Raw text.
    pub text: String,
}

/// Everything a pass can look at.
#[derive(Debug)]
pub struct Workspace {
    /// Root directory (informational; files are pre-loaded).
    pub root: PathBuf,
    /// Parsed Rust sources under `crates/*/src` and `src/`.
    pub files: Vec<SourceFile>,
    /// Markdown registry documents.
    pub docs: Vec<DocFile>,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass that produced it.
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub rel_path: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation.
    pub message: String,
}

impl Workspace {
    /// Loads the workspace rooted at `root`: every `.rs` file under
    /// `crates/*/src` and the top-level `src/`, plus the registry
    /// documents. `fixtures/` and `target/` never enter the scan set —
    /// fixtures carry seeded violations by design.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let passes = pass_names();
        let crates_dir = root.join("crates");
        let mut src_roots: Vec<PathBuf> = vec![root.join("src")];
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
                .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .map(|p| p.join("src"))
                .filter(|p| p.is_dir())
                .collect();
            entries.sort();
            src_roots.extend(entries);
        }
        for src_root in src_roots {
            if !src_root.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&src_root, &mut paths)?;
            paths.sort();
            for p in paths {
                let text = fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::parse(&rel, &text, &passes));
            }
        }
        let mut docs = Vec::new();
        for name in ["README.md", "DESIGN.md"] {
            let p = root.join(name);
            if p.is_file() {
                let text = fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
                docs.push(DocFile {
                    rel_path: name.to_string(),
                    text,
                });
            }
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            docs,
        })
    }

    /// Adds a virtual (in-memory) source to the scan set — the `--plant`
    /// mechanism. The path decides which scoped passes apply to it.
    pub fn add_virtual(&mut self, rel_path: &str, text: &str) {
        let passes = pass_names();
        self.files.push(SourceFile::parse(rel_path, text, &passes));
    }

    /// Looks a source up by its workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Recursively collects `.rs` files, skipping `fixtures` and `target`
/// directories.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let p = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if p.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Names of every registered pass (for allow-directive validation).
pub fn pass_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_passes().iter().map(|p| p.name()).collect();
    names.push("allow-syntax");
    names
}

/// The outcome of one engine run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived suppression, sorted by (path, line, pass).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of (valid) inline allows present in the tree.
    pub allows: usize,
    /// Number of passes run.
    pub passes_run: usize,
}

/// Runs every pass over the workspace and filters suppressed findings.
/// Malformed allow directives are reported as `allow-syntax` findings and
/// cannot themselves be suppressed.
pub fn run(ws: &Workspace) -> Report {
    let passes = all_passes();
    let mut findings = Vec::new();
    for pass in &passes {
        for f in pass.check(ws) {
            let suppressed = ws
                .file(&f.rel_path)
                .map(|sf| sf.allowed(f.pass, f.line))
                .unwrap_or(false);
            if !suppressed {
                findings.push(f);
            }
        }
    }
    for sf in &ws.files {
        for bad in &sf.bad_allows {
            findings.push(Finding {
                pass: "allow-syntax",
                rel_path: sf.rel_path.clone(),
                line: bad.line,
                message: bad.problem.clone(),
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.rel_path.as_str(), a.line, a.pass).cmp(&(b.rel_path.as_str(), b.line, b.pass))
    });
    Report {
        findings,
        files_scanned: ws.files.len(),
        allows: ws.files.iter().map(|f| f.allows.len()).sum(),
        passes_run: passes.len(),
    }
}

/// Convenience: load + run in one call.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    Ok(run(&Workspace::load(root)?))
}

/// Renders findings as a stable plain-text listing.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.rel_path, f.line, f.pass, f.message
        ));
    }
    out.push_str(&format!(
        "lint-source: {} files scanned, {} passes, {} findings, {} allows\n",
        report.files_scanned,
        report.passes_run,
        report.findings.len(),
        report.allows
    ));
    out
}

/// Renders findings as a JSON artifact (hand-rolled; std-only crate).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            escape(f.pass),
            escape(&f.rel_path),
            f.line,
            escape(&f.message),
            if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"files_scanned\": {},\n  \"passes\": {},\n  \"allows\": {}\n}}\n",
        report.files_scanned, report.passes_run, report.allows
    ));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

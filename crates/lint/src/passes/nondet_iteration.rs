//! **nondet-iteration** — hash-order iteration in code under a bitwise
//! determinism contract.
//!
//! `tests/par_determinism.rs` and the replay suites promise bitwise
//! identical results across runs and thread counts. `HashMap`/`HashSet`
//! iteration order is unspecified, so *iterating* one in kernel, solver
//! or replay code (folding floats, emitting events, draining work) can
//! silently break that contract even when every individual value is
//! right. Keyed lookup is fine; iteration needs `BTreeMap`/`BTreeSet`, a
//! sort, or a reasoned allow (e.g. the iteration is order-insensitive by
//! construction).
//!
//! Detection: names bound to a `HashMap`/`HashSet` type in the file
//! (let bindings, struct fields, params), then any `for … in` or
//! `.iter()/.keys()/.values()/.drain()/.retain()/.into_iter()` over such
//! a name. Scope: non-test code of `par`, `sparse`, `core`, `sim`.

use super::{finding, in_crates, Pass};
use crate::engine::{Finding, Workspace};
use crate::lex::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Crates whose non-test code is in scope.
const SCOPE: [&str; 4] = ["par", "sparse", "core", "sim"];

/// Iteration methods that expose hash order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// The pass.
pub struct NondetIteration;

/// Collects identifiers bound to a HashMap/HashSet type in this file:
/// `name: …HashMap<…` (fields, params, annotated lets) and
/// `let name = HashMap::new()/with_capacity(…)`.
fn hash_bound_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..file.clen() {
        let t = file.ct(i);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Walk back over type-wrapper tokens (`Mutex<`, `Option<`, `&`,
        // `::`, idents, `<`) to find `name :`.
        let mut j = i;
        while j > 0 {
            let p = file.ct(j - 1);
            let is_wrapper = p == "<"
                || p == "&"
                || p == "::"
                || (file.ck(j - 1) == TokKind::Ident && p != "let" && p != "mut");
            if p == ":" {
                if j >= 2 && file.ck(j - 2) == TokKind::Ident {
                    names.insert(file.ct(j - 2).to_string());
                }
                break;
            }
            if !is_wrapper {
                break;
            }
            j -= 1;
        }
        // `let [mut] name = …HashMap::…` with no type annotation.
        if file.ct(i + 1) == "::" {
            let mut j = i;
            while j > 0 && !matches!(file.ct(j - 1), ";" | "{" | "}" | "=") {
                j -= 1;
            }
            if j > 0 && file.ct(j - 1) == "=" {
                let mut k = j - 1;
                while k > 0 && !matches!(file.ct(k - 1), ";" | "{" | "}") {
                    k -= 1;
                }
                if file.ct(k) == "let" {
                    let name_pos = if file.ct(k + 1) == "mut" {
                        k + 2
                    } else {
                        k + 1
                    };
                    if file.ck(name_pos) == TokKind::Ident {
                        names.insert(file.ct(name_pos).to_string());
                    }
                }
            }
        }
    }
    names
}

impl Pass for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration in determinism-contract code (kernels, solvers, replay)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_crates(file, &SCOPE) {
                continue;
            }
            let names = hash_bound_names(file);
            if names.is_empty() {
                continue;
            }
            for i in 0..file.clen() {
                if file.in_test(i) {
                    continue;
                }
                let t = file.ct(i);
                // name.iter() / self.name.drain() …
                if file.ck(i) == TokKind::Ident
                    && names.contains(t)
                    && file.ct(i + 1) == "."
                    && ITER_METHODS.contains(&file.ct(i + 2))
                    && file.ct(i + 3) == "("
                {
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        format!(
                            "`{t}.{}()` iterates a hash container in determinism-contract code: \
                             hash order is unspecified; use BTreeMap/BTreeSet, sort first, or \
                             justify order-insensitivity with an allow",
                            file.ct(i + 2)
                        ),
                    ));
                    continue;
                }
                // for … in <expr containing a hash-bound name> { … }
                if t == "for" {
                    let mut j = i + 1;
                    while j < file.clen() && file.ct(j) != "in" {
                        j += 1;
                    }
                    let mut k = j;
                    while k < file.clen() && file.ct(k) != "{" {
                        if file.ck(k) == TokKind::Ident && names.contains(file.ct(k)) {
                            out.push(finding(
                                self.name(),
                                file,
                                i,
                                format!(
                                    "`for … in` over hash container `{}` in determinism-contract \
                                     code: hash order is unspecified; use BTreeMap/BTreeSet, sort \
                                     first, or justify with an allow",
                                    file.ct(k)
                                ),
                            ));
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
        out
    }
}

//! The pass catalog.
//!
//! Code passes scan the token-level source model; registry passes parse
//! human-maintained tables (module docs, README, DESIGN) against the code
//! that defines the corresponding constants. Every pass is suppressible
//! per-line with `// pscg-lint: allow(<pass>, <reason>)` — the reason is
//! mandatory.

pub mod float_eq;
pub mod nan_clamp;
pub mod nondet_iteration;
pub mod panic_hot_path;
pub mod registry;
pub mod unguarded_convergence;
pub mod unsafe_safety;

use crate::engine::{Finding, Workspace};
use crate::lex::TokKind;
use crate::source::SourceFile;

/// One lint pass.
pub trait Pass {
    /// Stable kebab-case name (used in allow directives and reports).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Runs the pass over the whole workspace.
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every registered pass, in report order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(nan_clamp::NanClamp),
        Box::new(unguarded_convergence::UnguardedConvergence),
        Box::new(panic_hot_path::PanicHotPath),
        Box::new(unsafe_safety::UnsafeWithoutSafety),
        Box::new(float_eq::FloatEq),
        Box::new(nondet_iteration::NondetIteration),
        Box::new(registry::ExitCodes),
        Box::new(registry::RecoveryCodes),
        Box::new(registry::SpanKinds),
    ]
}

/// True when `file` lives under `crates/<c>/src/` for any `c` in `crates`.
pub(crate) fn in_crates(file: &SourceFile, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| file.rel_path.starts_with(&format!("crates/{c}/src/")))
}

/// True when the token looks like a float: a literal with a fractional
/// part, exponent or float suffix.
pub(crate) fn is_float_lit(kind: TokKind, text: &str) -> bool {
    if kind != TokKind::Number {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (text.contains(['e', 'E']) && !text.starts_with("0x") && !text.starts_with("0X"))
}

/// Shorthand for building a finding anchored at code-view position `i`.
pub(crate) fn finding(pass: &'static str, file: &SourceFile, i: usize, message: String) -> Finding {
    Finding {
        pass,
        rel_path: file.rel_path.clone(),
        line: file.cline(i),
        message,
    }
}

//! **unsafe-without-safety** — every `unsafe` keyword must carry an
//! adjacent safety argument.
//!
//! PR 5 audited the tree once by hand; this pass makes the audit a
//! standing gate. An `unsafe` block, fn, impl or trait anywhere in the
//! workspace (tests included — an unjustified transmute in a test is
//! still a transmute) must have, within the eight lines above it or on
//! its own line, a comment containing `SAFETY:` or a doc section
//! `# Safety`. Eight lines accommodates the multi-sentence invariant
//! arguments the kernel code writes; for an `unsafe fn` under a long
//! doc block, the window extends across the contiguous run of comment
//! lines directly above the item.

use super::{finding, Pass};
use crate::engine::{Finding, Workspace};

/// How many lines above the `unsafe` token a safety comment may sit.
const WINDOW: u32 = 8;

/// The pass.
pub struct UnsafeWithoutSafety;

impl Pass for UnsafeWithoutSafety {
    fn name(&self) -> &'static str {
        "unsafe-without-safety"
    }

    fn description(&self) -> &'static str {
        "unsafe blocks/fns/impls without an adjacent SAFETY: (or # Safety) comment"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            for i in 0..file.clen() {
                if file.ct(i) != "unsafe" {
                    continue;
                }
                let line = file.cline(i);
                let mut low = line.saturating_sub(WINDOW);
                // A doc block reaching into the window extends it: keep
                // lowering the floor while the line below it carries a
                // comment, so a long `# Safety` section is never cut off.
                let comment_lines: Vec<u32> = file
                    .tokens
                    .iter()
                    .filter(|t| t.is_comment())
                    .map(|t| t.line)
                    .collect();
                while low > 1 && comment_lines.contains(&(low - 1)) {
                    low -= 1;
                }
                let justified = file.tokens.iter().any(|t| {
                    t.is_comment()
                        && t.line >= low
                        && t.line <= line
                        && (t.text.contains("SAFETY:") || t.text.contains("# Safety"))
                });
                if !justified {
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        "unsafe without an adjacent SAFETY: comment (or `# Safety` doc \
                         section) stating the invariant that makes it sound"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}

//! **unguarded-convergence** — a convergence decision taken before the
//! method has checked that its inputs can be trusted.
//!
//! A relres/threshold comparison (`relres * bnorm < threshold`,
//! `… < opts.rtol`, …) in a solver loop must be preceded *in the same
//! function* by a trust check: `ctx.rank_failure()` (a dead peer poisons
//! every later reduction) or a finiteness test (`is_finite` / `is_nan`).
//! PR 9's chaos campaign showed what happens otherwise: a NaN norm
//! clamped to zero reads as instant convergence. This pass makes the
//! fixed discipline a standing gate in `crates/core/src/methods/*`.

use super::{finding, Pass};
use crate::engine::{Finding, Workspace};
use crate::lex::TokKind;

/// Identifiers whose presence marks a comparison as a convergence test.
fn is_convergence_ident(text: &str) -> bool {
    text.contains("relres") || text == "threshold" || text == "rtol"
}

/// Identifiers that count as a trust check when seen earlier in the
/// function: an explicit rank/finiteness test, the typed-error reduction
/// wait (whose `Err` arm exits before any comparison), or the
/// NaN-preserving residual constructors (a poisoned value stays NaN and
/// fails every `<`).
fn is_guard_ident(text: &str) -> bool {
    matches!(
        text,
        "rank_failure"
            | "is_finite"
            | "is_nan"
            | "is_infinite"
            | "wait_reduction"
            | "relres_from_sq"
            | "norm_from_sq"
    )
}

/// The pass.
pub struct UnguardedConvergence;

impl Pass for UnguardedConvergence {
    fn name(&self) -> &'static str {
        "unguarded-convergence"
    }

    fn description(&self) -> &'static str {
        "relres/threshold comparisons not preceded in-function by a rank-failure or finiteness check"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !file.rel_path.starts_with("crates/core/src/methods/") {
                continue;
            }
            for i in 0..file.clen() {
                if !matches!(file.ct(i), "<" | "<=") || file.in_test(i) {
                    continue;
                }
                // Generics (`Vec<f64>`) have a type name straight before
                // the angle bracket; comparisons compare lowercase values.
                let prev = file.ct(i.wrapping_sub(1));
                if file.ck(i.wrapping_sub(1)) == TokKind::Ident
                    && prev.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    continue;
                }
                // The statement window: back to the nearest statement
                // boundary, forward to the next one.
                let mut s = i;
                while s > 0 && !matches!(file.ct(s - 1), ";" | "{" | "}") {
                    s -= 1;
                }
                let mut e = i;
                while e < file.clen() && !matches!(file.ct(e), ";" | "{") {
                    e += 1;
                }
                let is_convergence = (s..e)
                    .any(|j| file.ck(j) == TokKind::Ident && is_convergence_ident(file.ct(j)));
                if !is_convergence {
                    continue;
                }
                let Some(f) = file.fn_containing(i) else {
                    continue;
                };
                let guarded = (f.body_start..i)
                    .any(|j| file.ck(j) == TokKind::Ident && is_guard_ident(file.ct(j)));
                if !guarded {
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        format!(
                            "convergence comparison in `{}` with no preceding rank_failure()/\
                             finiteness check: a poisoned reduction would be interpreted as a \
                             residual",
                            f.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

//! **registry passes** — human-maintained tables parsed against the code
//! that defines them.
//!
//! Three registries drift silently when only one side is edited:
//!
//! - `registry-exit-codes`: the reserved-exit-code tables (module docs of
//!   `crates/analysis/src/exit_codes.rs`, plus the README table) vs. the
//!   `FindingClass` enum, its `exit_code()` arms and its `Display` names.
//!   Gaps are legal (17 is reserved by the perf-report binary, not a
//!   finding class); duplicates are not.
//! - `registry-recovery-codes`: the recovery-code tables in README.md and
//!   DESIGN.md vs. the `pub mod code` constants in
//!   `crates/core/src/resilience.rs`.
//! - `registry-span-kinds`: the span-kind table in DESIGN.md vs.
//!   `SpanKind` in `crates/obs/src/span.rs` — and the enum's own internal
//!   consistency (variants ↔ `name()` arms ↔ the `ALL` list).
//!
//! All parsing is textual/token-level, so the std-only lint crate audits
//! these registries without depending on the crates it checks.

use super::Pass;
use crate::engine::{Finding, Workspace};
use crate::lex::TokKind;
use crate::source::SourceFile;

/// Splits a markdown table row (optionally behind a `//!` doc prefix)
/// into trimmed cells; `None` when the line is not a row.
pub fn table_cells(line: &str) -> Option<Vec<String>> {
    let line = line.trim_start();
    let line = line
        .strip_prefix("//!")
        .map(str::trim_start)
        .unwrap_or(line);
    let rest = line.strip_prefix('|')?;
    Some(rest.split('|').map(|c| c.trim().to_string()).collect())
}

/// Extracts the content of the first backtick span in a cell.
fn backticked(cell: &str) -> Option<String> {
    let start = cell.find('`')?;
    let rest = &cell[start + 1..];
    let end = rest.find('`')?;
    Some(rest[..end].to_string())
}

/// Parses a `(code, name)` table anchored at the first row whose header
/// cells start with `header_prefix` (e.g. `["code", "class"]`). Returns
/// the rows with their 1-based line numbers.
pub fn parse_code_table(text: &str, header_prefix: &[&str]) -> Vec<(u32, i64, String)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let Some(cells) = table_cells(line) else {
            if in_table {
                break;
            }
            continue;
        };
        if !in_table {
            let matches_header = header_prefix
                .iter()
                .enumerate()
                .all(|(i, h)| cells.get(i).is_some_and(|c| c.eq_ignore_ascii_case(h)));
            if matches_header {
                in_table = true;
            }
            continue;
        }
        if cells.first().is_some_and(|c| c.starts_with("---")) {
            continue;
        }
        let Some(code) = cells.first().and_then(|c| c.parse::<i64>().ok()) else {
            // A malformed data row inside the table is a real drift risk:
            // report it via a sentinel the caller turns into a finding.
            rows.push((lineno, i64::MIN, cells.first().cloned().unwrap_or_default()));
            continue;
        };
        let Some(name) = cells.get(1).map(|c| {
            let raw = backticked(c).unwrap_or_else(|| c.clone());
            // Doc tables may write `FindingClass::Hazard`; the code truth
            // uses bare names — compare path-stripped.
            raw.rsplit("::").next().unwrap_or(&raw).to_string()
        }) else {
            continue;
        };
        rows.push((lineno, code, name));
    }
    rows
}

/// Parses a one-column name table (e.g. the span-kind table) anchored the
/// same way; returns `(line, name)`.
pub fn parse_name_table(text: &str, header_prefix: &[&str]) -> Vec<(u32, String)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let Some(cells) = table_cells(line) else {
            if in_table {
                break;
            }
            continue;
        };
        if !in_table {
            let matches_header = header_prefix
                .iter()
                .enumerate()
                .all(|(i, h)| cells.get(i).is_some_and(|c| c.eq_ignore_ascii_case(h)));
            if matches_header {
                in_table = true;
            }
            continue;
        }
        if cells.first().is_some_and(|c| c.starts_with("---")) {
            continue;
        }
        if let Some(name) = cells.first().and_then(|c| backticked(c)) {
            rows.push((lineno, name));
        }
    }
    rows
}

/// Parses `Enum :: Variant => value` match arms inside the span of the
/// function named `fn_name`, where value is an integer literal.
fn parse_int_arms(file: &SourceFile, fn_name: &str, enum_name: &str) -> Vec<(String, i64)> {
    let mut out = Vec::new();
    let Some(span) = file.fns.iter().find(|f| f.name == fn_name) else {
        return out;
    };
    for i in span.body_start..span.end {
        if file.ct(i) == enum_name && file.ct(i + 1) == "::" && file.ct(i + 3) == "=>" {
            if let Ok(v) = file.ct(i + 4).parse::<i64>() {
                out.push((file.ct(i + 2).to_string(), v));
            }
        }
    }
    out
}

/// Parses `Enum :: Variant => "str"` match arms inside `fn_name`.
fn parse_str_arms(file: &SourceFile, fn_name: &str, enum_name: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(span) = file.fns.iter().find(|f| f.name == fn_name) else {
        return out;
    };
    for i in span.body_start..span.end {
        if file.ct(i) == enum_name && file.ct(i + 1) == "::" && file.ct(i + 3) == "=>" {
            let val = file.ct(i + 4);
            if val.starts_with('"') && val.ends_with('"') && val.len() >= 2 {
                out.push((
                    file.ct(i + 2).to_string(),
                    val[1..val.len() - 1].to_string(),
                ));
            }
        }
    }
    out
}

/// Parses the variant names of `pub enum <name>`.
fn parse_enum_variants(file: &SourceFile, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..file.clen() {
        if file.ct(i) == "enum" && file.ct(i + 1) == name && file.ct(i + 2) == "{" {
            let Some(close) = file.match_delim(i + 2) else {
                return out;
            };
            let mut j = i + 3;
            while j < close {
                if file.ck(j) == TokKind::Ident && (file.ct(j + 1) == "," || j + 1 == close) {
                    out.push(file.ct(j).to_string());
                }
                j += 1;
            }
            return out;
        }
    }
    out
}

/// Parses `Enum :: Variant` entries of the `ALL` array initializer.
fn parse_all_list(file: &SourceFile, enum_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..file.clen() {
        if file.ct(i) == "ALL" && file.ct(i + 1) == ":" {
            // Skip the array-type annotation `[Enum; N]` first — its `;`
            // must not end the `=` search — then find the initializer.
            let mut j = i + 2;
            if file.ct(j) == "[" {
                match file.match_delim(j) {
                    Some(c) => j = c + 1,
                    None => continue,
                }
            }
            while j < file.clen() && file.ct(j) != "=" && file.ct(j) != ";" {
                j += 1;
            }
            if file.ct(j) != "=" {
                continue;
            }
            while j < file.clen() && file.ct(j) != "[" {
                j += 1;
            }
            let Some(close) = file.match_delim(j) else {
                return out;
            };
            for k in j..close {
                if file.ct(k) == enum_name && file.ct(k + 1) == "::" {
                    out.push(file.ct(k + 2).to_string());
                }
            }
            return out;
        }
    }
    out
}

/// Parses `pub const NAME: u64 = N;` constants inside `pub mod code`.
fn parse_code_consts(file: &SourceFile) -> Vec<(String, i64)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    // Locate `mod code {`.
    let mut body = None;
    while i + 2 < file.clen() {
        if file.ct(i) == "mod" && file.ct(i + 1) == "code" && file.ct(i + 2) == "{" {
            body = file.match_delim(i + 2).map(|c| (i + 3, c));
            break;
        }
        i += 1;
    }
    let Some((start, end)) = body else {
        return out;
    };
    let mut j = start;
    while j < end {
        if file.ct(j) == "const"
            && file.ck(j + 1) == TokKind::Ident
            && file.ct(j + 2) == ":"
            && file.ct(j + 4) == "="
        {
            if let Ok(v) = file.ct(j + 5).parse::<i64>() {
                out.push((file.ct(j + 1).to_string(), v));
            }
        }
        j += 1;
    }
    out
}

/// Set-compares `(code, name)` rows from a doc table against the code
/// truth, appending mismatch findings.
fn diff_code_table(
    pass: &'static str,
    doc_path: &str,
    rows: &[(u32, i64, String)],
    truth: &[(String, i64)],
    label: &str,
    out: &mut Vec<Finding>,
) {
    if rows.is_empty() {
        out.push(Finding {
            pass,
            rel_path: doc_path.to_string(),
            line: 1,
            message: format!("no {label} table found (anchored by its header row)"),
        });
        return;
    }
    let mut seen = Vec::new();
    for (line, code, name) in rows {
        if *code == i64::MIN {
            out.push(Finding {
                pass,
                rel_path: doc_path.to_string(),
                line: *line,
                message: format!(
                    "malformed {label} row: first cell {name:?} is not an integer code"
                ),
            });
            continue;
        }
        if seen.contains(code) {
            out.push(Finding {
                pass,
                rel_path: doc_path.to_string(),
                line: *line,
                message: format!("duplicate code {code} in the {label} table"),
            });
        }
        seen.push(*code);
        match truth.iter().find(|(n, _)| n == name) {
            None => out.push(Finding {
                pass,
                rel_path: doc_path.to_string(),
                line: *line,
                message: format!("{label} table row {code} names unknown entry {name:?}"),
            }),
            Some((_, actual)) if actual != code => out.push(Finding {
                pass,
                rel_path: doc_path.to_string(),
                line: *line,
                message: format!("{label} table says {name} = {code}, the code says {actual}"),
            }),
            Some(_) => {}
        }
    }
    for (name, code) in truth {
        if !rows.iter().any(|(_, _, n)| n == name) {
            out.push(Finding {
                pass,
                rel_path: doc_path.to_string(),
                line: 1,
                message: format!("{label} table is missing {name} (= {code})"),
            });
        }
    }
}

/// The exit-code registry pass.
pub struct ExitCodes;

/// Source path of the exit-code registry.
const EXIT_CODES_RS: &str = "crates/analysis/src/exit_codes.rs";

impl Pass for ExitCodes {
    fn name(&self) -> &'static str {
        "registry-exit-codes"
    }

    fn description(&self) -> &'static str {
        "exit-code tables (exit_codes.rs docs, README) vs. FindingClass arms"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let Some(file) = ws.file(EXIT_CODES_RS) else {
            return vec![Finding {
                pass: self.name(),
                rel_path: EXIT_CODES_RS.to_string(),
                line: 1,
                message: "registry source missing from the scan set".to_string(),
            }];
        };
        let variants = parse_enum_variants(file, "FindingClass");
        let arms = parse_int_arms(file, "exit_code", "FindingClass");
        let display = parse_str_arms(file, "fmt", "FindingClass");
        let all = parse_all_list(file, "FindingClass");
        // Internal consistency of the enum itself.
        for v in &variants {
            if !arms.iter().any(|(n, _)| n == v) {
                out.push(Finding {
                    pass: self.name(),
                    rel_path: file.rel_path.clone(),
                    line: 1,
                    message: format!("FindingClass::{v} has no exit_code() arm"),
                });
            }
            if !all.contains(v) {
                out.push(Finding {
                    pass: self.name(),
                    rel_path: file.rel_path.clone(),
                    line: 1,
                    message: format!("FindingClass::{v} missing from FindingClass::ALL"),
                });
            }
        }
        let mut codes: Vec<i64> = arms.iter().map(|(_, c)| *c).collect();
        codes.sort_unstable();
        codes.dedup();
        if codes.len() != arms.len() {
            out.push(Finding {
                pass: self.name(),
                rel_path: file.rel_path.clone(),
                line: 1,
                message: "duplicate exit codes across FindingClass variants".to_string(),
            });
        }
        // The module-doc table in the same file, keyed by variant name.
        let doc_rows = parse_code_table(&file.text, &["code", "class"]);
        diff_code_table(
            self.name(),
            &file.rel_path,
            &doc_rows,
            &arms,
            "exit-code",
            &mut out,
        );
        // The README table, keyed by Display name.
        let display_truth: Vec<(String, i64)> = display
            .iter()
            .filter_map(|(v, name)| {
                arms.iter()
                    .find(|(av, _)| av == v)
                    .map(|(_, c)| (name.clone(), *c))
            })
            .collect();
        if let Some(readme) = ws.docs.iter().find(|d| d.rel_path == "README.md") {
            let rows = parse_code_table(&readme.text, &["code", "class"]);
            diff_code_table(
                self.name(),
                &readme.rel_path,
                &rows,
                &display_truth,
                "exit-code",
                &mut out,
            );
        }
        out
    }
}

/// The recovery-code registry pass.
pub struct RecoveryCodes;

/// Source path of the recovery-code registry.
const RESILIENCE_RS: &str = "crates/core/src/resilience.rs";

impl Pass for RecoveryCodes {
    fn name(&self) -> &'static str {
        "registry-recovery-codes"
    }

    fn description(&self) -> &'static str {
        "recovery-code tables (README, DESIGN §8) vs. resilience::code constants"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let Some(file) = ws.file(RESILIENCE_RS) else {
            return vec![Finding {
                pass: self.name(),
                rel_path: RESILIENCE_RS.to_string(),
                line: 1,
                message: "registry source missing from the scan set".to_string(),
            }];
        };
        let consts = parse_code_consts(file);
        if consts.is_empty() {
            out.push(Finding {
                pass: self.name(),
                rel_path: file.rel_path.clone(),
                line: 1,
                message: "no `pub mod code` constants found in resilience.rs".to_string(),
            });
            return out;
        }
        for doc in &ws.docs {
            let rows = parse_code_table(&doc.text, &["code", "action"]);
            diff_code_table(
                self.name(),
                &doc.rel_path,
                &rows,
                &consts,
                "recovery-code",
                &mut out,
            );
        }
        out
    }
}

/// The span-kind registry pass.
pub struct SpanKinds;

/// Source path of the span-kind registry.
const SPAN_RS: &str = "crates/obs/src/span.rs";

impl Pass for SpanKinds {
    fn name(&self) -> &'static str {
        "registry-span-kinds"
    }

    fn description(&self) -> &'static str {
        "span-kind table (DESIGN §7) vs. SpanKind names, plus enum/name()/ALL consistency"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let Some(file) = ws.file(SPAN_RS) else {
            return vec![Finding {
                pass: self.name(),
                rel_path: SPAN_RS.to_string(),
                line: 1,
                message: "registry source missing from the scan set".to_string(),
            }];
        };
        let variants = parse_enum_variants(file, "SpanKind");
        let names = parse_str_arms(file, "name", "SpanKind");
        let all = parse_all_list(file, "SpanKind");
        for v in &variants {
            if !names.iter().any(|(n, _)| n == v) {
                out.push(Finding {
                    pass: self.name(),
                    rel_path: file.rel_path.clone(),
                    line: 1,
                    message: format!("SpanKind::{v} has no name() arm"),
                });
            }
            if !all.contains(v) {
                out.push(Finding {
                    pass: self.name(),
                    rel_path: file.rel_path.clone(),
                    line: 1,
                    message: format!("SpanKind::{v} missing from SpanKind::ALL"),
                });
            }
        }
        if all.len() != variants.len() {
            out.push(Finding {
                pass: self.name(),
                rel_path: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "SpanKind::ALL lists {} entries but the enum has {} variants",
                    all.len(),
                    variants.len()
                ),
            });
        }
        if let Some(design) = ws.docs.iter().find(|d| d.rel_path == "DESIGN.md") {
            let rows = parse_name_table(&design.text, &["span kind"]);
            if rows.is_empty() {
                out.push(Finding {
                    pass: self.name(),
                    rel_path: design.rel_path.clone(),
                    line: 1,
                    message: "no span-kind table found (anchored by a `span kind` header)"
                        .to_string(),
                });
            } else {
                for (line, n) in &rows {
                    if !names.iter().any(|(_, s)| s == n) {
                        out.push(Finding {
                            pass: self.name(),
                            rel_path: design.rel_path.clone(),
                            line: *line,
                            message: format!("span-kind table names unknown kind `{n}`"),
                        });
                    }
                }
                for (_, s) in &names {
                    if !rows.iter().any(|(_, n)| n == s) {
                        out.push(Finding {
                            pass: self.name(),
                            rel_path: design.rel_path.clone(),
                            line: 1,
                            message: format!("span-kind table is missing `{s}`"),
                        });
                    }
                }
            }
        }
        out
    }
}

//! **panic-in-hot-path** — abort paths in code that must degrade to typed
//! errors.
//!
//! The resilient supervisor's whole contract is "recover or return a
//! typed error, never die": a stray `unwrap()` in a solver loop or kernel
//! turns a recoverable fault into a process abort (and on the
//! thread-backed engine, a poisoned pool). Flagged in non-test code of
//! `core`, `par`, `sparse`, `sim`:
//!
//! - `.unwrap()` / `.expect(…)` — except directly on `lock(…)` or a
//!   condvar `wait(…)`, where panicking *propagates* a poison panic from
//!   another thread rather than creating a new failure mode (masking it
//!   with `unwrap_or_else` would hide the original bug);
//! - `panic!(…)`;
//! - `assert!`/`assert_eq!`/`assert_ne!` whose condition indexes a slice
//!   (`[`…`]` in the arguments) — a bounds-adjacent abort in kernel code.
//!   Plain asserts on arguments (shape checks at API boundaries) are the
//!   documented contract and stay legal; `debug_assert!` is compiled out
//!   of release builds and is always legal.

use super::{finding, in_crates, Pass};
use crate::engine::{Finding, Workspace};

/// Crates whose non-test code is in scope.
const SCOPE: [&str; 4] = ["core", "par", "sparse", "sim"];

/// The pass.
pub struct PanicHotPath;

impl Pass for PanicHotPath {
    fn name(&self) -> &'static str {
        "panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/indexing asserts in non-test solver, kernel and engine code"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_crates(file, &SCOPE) {
                continue;
            }
            for i in 0..file.clen() {
                if file.in_test(i) {
                    continue;
                }
                let t = file.ct(i);
                // `.unwrap()` / `.expect(…)`, with the lock() exemption.
                if (t == "unwrap" || t == "expect")
                    && file.ct(i.wrapping_sub(1)) == "."
                    && file.ct(i + 1) == "("
                {
                    // Receiver is `lock(…)`/`wait(…)`: walk back over the
                    // closing paren at i-2 to the call's method name.
                    let mut poison_propagation = false;
                    if i >= 4 && file.ct(i - 2) == ")" {
                        let mut depth = 1i32;
                        let mut j = i - 2;
                        while j > 0 && depth > 0 {
                            j -= 1;
                            match file.ct(j) {
                                ")" => depth += 1,
                                "(" => depth -= 1,
                                _ => {}
                            }
                        }
                        poison_propagation =
                            depth == 0 && j > 0 && matches!(file.ct(j - 1), "lock" | "wait");
                    }
                    if poison_propagation {
                        continue;
                    }
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        format!(
                            ".{t}() in hot-path code: a recoverable condition becomes a process \
                             abort; return a typed error or justify with an allow"
                        ),
                    ));
                    continue;
                }
                if t == "panic" && file.ct(i + 1) == "!" {
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        "panic! in hot-path code: the resilience ladder cannot catch an abort; \
                         return a typed error or justify with an allow"
                            .to_string(),
                    ));
                    continue;
                }
                if matches!(t, "assert" | "assert_eq" | "assert_ne")
                    && file.ct(i + 1) == "!"
                    && file.ct(i + 2) == "("
                {
                    if let Some(close) = file.match_delim(i + 2) {
                        if (i + 3..close).any(|j| file.ct(j) == "[") {
                            out.push(finding(
                                self.name(),
                                file,
                                i,
                                format!(
                                    "{t}! with an indexing condition in hot-path code: both the \
                                     assert and the index can abort mid-solve; hoist the check \
                                     into a typed error or justify with an allow"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

//! **nan-clamp** — the silent-wrong idiom the PR 9 chaos campaign found
//! dynamically, caught at the source level.
//!
//! `f64::max(NaN, 0.0)` returns `0.0`: a clamp meant to absorb tiny
//! negative rounding before a square root also absorbs a NaN-poisoned
//! reduction, turning a dead rank's poison into a fake zero residual and
//! instant "convergence". The blessed helpers (`relres_from_sq`,
//! `true_relres`, `norm_from_sq` in `crates/core`) preserve NaN before
//! clamping; everything else must go through them or carry a reasoned
//! allow.
//!
//! Two shapes are flagged in non-test code:
//!
//! 1. A clamp chain feeding a square root — `.max(…).sqrt()`,
//!    `.clamp(…).sqrt()`, `.abs().sqrt()` — in `core`, `par`, `sparse`,
//!    `sim`.
//! 2. A bare exact-zero clamp `.max(0.0)` (the NaN-masking constant) in
//!    the same crates, and a clamped value compared directly against a
//!    bound (`.max(…) <`, `.clamp(…) <`) in `crates/core`, where
//!    reduction-derived scalars live. `.abs()` before a comparison is
//!    deliberately *not* flagged — epsilon tests are the legitimate float
//!    idiom.

use super::{finding, in_crates, Pass};
use crate::engine::{Finding, Workspace};

/// Crates whose non-test code is in scope.
const SCOPE: [&str; 4] = ["core", "par", "sparse", "sim"];

/// Functions allowed to use the idiom: they are the NaN-preserving
/// wrappers everything else is told to call.
const BLESSED: [&str; 3] = ["relres_from_sq", "true_relres", "norm_from_sq"];

/// The pass.
pub struct NanClamp;

impl Pass for NanClamp {
    fn name(&self) -> &'static str {
        "nan-clamp"
    }

    fn description(&self) -> &'static str {
        "clamp idioms (.max/.clamp/.abs) that silently map NaN-poisoned values to fake in-range results"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_crates(file, &SCOPE) {
                continue;
            }
            let in_core = in_crates(file, &["core"]);
            for i in 0..file.clen() {
                if file.ct(i) != "." {
                    continue;
                }
                let method = file.ct(i + 1);
                if !matches!(method, "max" | "clamp" | "abs") || file.ct(i + 2) != "(" {
                    continue;
                }
                if file.in_test(i) {
                    continue;
                }
                if let Some(f) = file.fn_containing(i) {
                    if BLESSED.contains(&f.name.as_str()) {
                        continue;
                    }
                }
                let Some(close) = file.match_delim(i + 2) else {
                    continue;
                };
                let feeds_sqrt = file.ct(close + 1) == "."
                    && file.ct(close + 2) == "sqrt"
                    && file.ct(close + 3) == "(";
                if feeds_sqrt {
                    out.push(finding(
                        self.name(),
                        file,
                        i + 1,
                        format!(
                            ".{method}(…).sqrt(): a NaN-poisoned value is clamped into a fake \
                             in-range norm; use the NaN-preserving helpers \
                             (methods::relres_from_sq / norm_from_sq, resilience::true_relres)"
                        ),
                    ));
                    continue;
                }
                let zero_clamp = method == "max"
                    && close == i + 4
                    && matches!(file.ct(i + 3), "0.0" | "0." | "0f64" | "0.0f64");
                if zero_clamp {
                    out.push(finding(
                        self.name(),
                        file,
                        i + 1,
                        ".max(0.0): f64::max(NaN, 0.0) returns 0.0, so a poisoned value is \
                         silently zeroed; preserve NaN (check is_finite first) or justify with \
                         an allow"
                            .to_string(),
                    ));
                    continue;
                }
                let compared = in_core
                    && matches!(method, "max" | "clamp")
                    && matches!(file.ct(close + 1), "<" | "<=" | ">" | ">=");
                if compared {
                    out.push(finding(
                        self.name(),
                        file,
                        i + 1,
                        format!(
                            ".{method}(…) compared against a bound: a NaN input would be clamped \
                             into the comparable range; check finiteness before interpreting"
                        ),
                    ));
                }
            }
        }
        out
    }
}

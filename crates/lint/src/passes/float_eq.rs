//! **float-eq** — exact equality on floating-point expressions.
//!
//! `==`/`!=` between floats is almost always a rounding bug in numeric
//! code; where it is intentional (exact sparsity skips, exact breakdown
//! guards before a division, bitwise-determinism checks) the site must
//! say so with a reasoned allow or compare bit patterns via `to_bits()`.
//!
//! Detection is heuristic (the lexer has no types): an `==`/`!=` whose
//! adjacent operand token is a float literal, or an `f32::`/`f64::`
//! associated constant (`NAN`, `INFINITY`, `EPSILON`, …). Comparisons of
//! two float *variables* are invisible to it — the fixture suite pins the
//! shapes it must catch. Non-test code only.

use super::{finding, is_float_lit, Pass};
use crate::engine::{Finding, Workspace};

/// The pass.
pub struct FloatEq;

impl Pass for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "exact ==/!= against float literals or f32/f64 constants outside tests"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !file.rel_path.starts_with("crates/") && !file.rel_path.starts_with("src/") {
                continue;
            }
            for i in 0..file.clen() {
                let op = file.ct(i);
                if !matches!(op, "==" | "!=") || file.in_test(i) {
                    continue;
                }
                let float_left = i >= 1 && is_float_lit(file.ck(i - 1), file.ct(i - 1))
                    || (i >= 3
                        && file.ct(i - 2) == "::"
                        && matches!(file.ct(i - 3), "f32" | "f64"));
                let float_right = is_float_lit(file.ck(i + 1), file.ct(i + 1))
                    || (matches!(file.ct(i + 1), "f32" | "f64") && file.ct(i + 2) == "::");
                if float_left || float_right {
                    out.push(finding(
                        self.name(),
                        file,
                        i,
                        format!(
                            "exact float {op}: rounding makes exact equality fragile; compare \
                             with a tolerance, use to_bits() for bitwise intent, or justify the \
                             exact comparison with an allow"
                        ),
                    ));
                }
            }
        }
        out
    }
}

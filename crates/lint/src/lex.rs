//! A lightweight Rust lexer: enough token structure for pattern-level
//! source analysis, none of the grammar.
//!
//! The passes in this crate match *token shapes* (`.max(…).sqrt()`,
//! `ident ( … )`, comment text), so the lexer only has to get the hard
//! lexical boundaries right — strings, raw strings, char literals vs.
//! lifetimes, nested block comments, float literals with exponents —
//! and carry a line number per token. It never needs to parse
//! expressions.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `relres`, …).
    Ident,
    /// Numeric literal, including suffixes and exponents (`0.0`, `1e-5`,
    /// `42u64`).
    Number,
    /// String literal (plain, raw, byte); text excludes the quotes'
    /// content semantics — the raw source slice is kept.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (doc and non-doc alike); text includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested); text includes delimiters.
    BlockComment,
    /// Punctuation, with a small set of compound operators fused
    /// (`==`, `!=`, `<=`, `>=`, `::`, `->`, `=>`, `..`, `&&`, `||`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The raw source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when this token is a comment of either form.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Compound operators fused into one `Punct` token, longest first so the
/// match is greedy.
const COMPOUND: [&str; 17] = [
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<", ">>",
    "+=", "-=",
];

/// Lexes `src` into tokens. Whitespace is skipped (line numbers carry the
/// layout information the passes need). Unterminated constructs consume
/// to end of input rather than erroring: the lint must degrade gracefully
/// on code mid-edit.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let push = |toks: &mut Vec<Token>, kind, text: String, line| {
        toks.push(Token { kind, text, line });
    };
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            push(
                &mut toks,
                TokKind::LineComment,
                b[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            push(
                &mut toks,
                TokKind::BlockComment,
                b[start..i].iter().collect(),
                start_line,
            );
            continue;
        }
        // Raw / byte string prefixes: r", r#…#", br", b", b'.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (skip, is_raw) = match (c, b[i + 1]) {
                ('r', '"') | ('r', '#') => (1usize, true),
                ('b', '"') => (1, false),
                ('b', 'r') if i + 2 < n && (b[i + 2] == '"' || b[i + 2] == '#') => (2, true),
                ('b', '\'') => {
                    // Byte char literal b'x'.
                    let start = i;
                    let start_line = line;
                    i += 2;
                    if i < n && b[i] == '\\' {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    push(
                        &mut toks,
                        TokKind::Char,
                        b[start..i.min(n)].iter().collect(),
                        start_line,
                    );
                    continue;
                }
                _ => (0, false),
            };
            if skip > 0 {
                let start = i;
                let start_line = line;
                i += skip;
                if is_raw {
                    let mut hashes = 0usize;
                    while i < n && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            if b[i] == '"' {
                                let mut j = i + 1;
                                let mut h = 0usize;
                                while j < n && b[j] == '#' && h < hashes {
                                    h += 1;
                                    j += 1;
                                }
                                if h == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        push(
                            &mut toks,
                            TokKind::Str,
                            b[start..i.min(n)].iter().collect(),
                            start_line,
                        );
                        continue;
                    }
                    // `r` not actually starting a raw string (e.g. `r#ident`
                    // never happens, but an ident starting with r does):
                    // fall through to the ident path below from `start`.
                    i = start;
                } else {
                    // b"…": delegate to the plain-string scanner below by
                    // positioning on the quote.
                    i = start + 1;
                    let (ni, nline) = scan_string(&b, i, line);
                    push(
                        &mut toks,
                        TokKind::Str,
                        b[start..ni.min(n)].iter().collect(),
                        start_line,
                    );
                    i = ni;
                    line = nline;
                    continue;
                }
            }
        }
        if c == '"' {
            let start = i;
            let start_line = line;
            let (ni, nline) = scan_string(&b, i, line);
            push(
                &mut toks,
                TokKind::Str,
                b[start..ni.min(n)].iter().collect(),
                start_line,
            );
            i = ni;
            line = nline;
            continue;
        }
        if c == '\'' {
            // Disambiguate char literal from lifetime: 'x' / '\n' are
            // chars; 'ident (no closing quote right after one char) is a
            // lifetime.
            if i + 1 < n && b[i + 1] == '\\' {
                let start = i;
                i += 2;
                if i < n {
                    i += 1; // escaped char (or first of \u{…}, handled below)
                }
                while i < n && b[i] != '\'' && b[i] != '\n' {
                    i += 1;
                }
                i = (i + 1).min(n);
                push(&mut toks, TokKind::Char, b[start..i].iter().collect(), line);
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                let start = i;
                i += 3;
                push(&mut toks, TokKind::Char, b[start..i].iter().collect(), line);
                continue;
            }
            // Lifetime.
            let start = i;
            i += 1;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            push(
                &mut toks,
                TokKind::Lifetime,
                b[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                // Exponent sign: 1e-5 / 2.5E+3.
                if (b[i] == 'e' || b[i] == 'E')
                    && i + 1 < n
                    && (b[i + 1] == '+' || b[i + 1] == '-')
                    && i + 2 < n
                    && b[i + 2].is_ascii_digit()
                {
                    i += 2;
                }
                i += 1;
            }
            // Fractional part: consume `.` unless it starts a method call
            // (`.max`) or a range (`..`).
            if i < n && b[i] == '.' {
                let next = b.get(i + 1).copied().unwrap_or(' ');
                if next.is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                        if (b[i] == 'e' || b[i] == 'E')
                            && i + 1 < n
                            && (b[i + 1] == '+' || b[i + 1] == '-')
                        {
                            i += 1;
                        }
                        i += 1;
                    }
                } else if !(next.is_alphabetic() || next == '_' || next == '.') {
                    // Trailing-dot float like `0.` in `x.max(0.)`.
                    i += 1;
                }
            }
            push(
                &mut toks,
                TokKind::Number,
                b[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            i += 1;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            push(
                &mut toks,
                TokKind::Ident,
                b[start..i].iter().collect(),
                line,
            );
            continue;
        }
        // Punctuation: greedy compound match.
        let mut matched = false;
        for op in COMPOUND {
            let len = op.chars().count();
            if i + len <= n && b[i..i + len].iter().collect::<String>() == op {
                push(&mut toks, TokKind::Punct, op.to_string(), line);
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            push(&mut toks, TokKind::Punct, c.to_string(), line);
            i += 1;
        }
    }
    toks
}

/// Scans a plain `"…"` string starting at the opening quote; returns the
/// index just past the closing quote and the updated line count.
fn scan_string(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    debug_assert_eq!(b[i], '"');
    i += 1;
    while i < b.len() {
        match b[i] {
            // An escape consumes the next char too — which can be the
            // newline of a `\`-continuation and must still count.
            '\\' => {
                if b.get(i + 1) == Some(&'\n') {
                    line += 1;
                }
                i += 2;
            }
            '"' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_with_escapes_and_raw_strings() {
        let toks = kinds(r##"let s = "a \" b"; let r = r#"raw " here"#;"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs.len(), 2, "{toks:?}");
        assert!(strs[0].contains("\\\""));
        assert!(strs[1].starts_with("r#\""));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2, "{toks:?}");
        assert_eq!(chars, 2, "{toks:?}");
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let toks = lex("/* outer /* inner */ still */\nfn f() {}\n// tail");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 2);
        let tail = toks.iter().find(|t| t.text == "// tail").unwrap();
        assert_eq!(tail.line, 3);
    }

    #[test]
    fn float_literals_with_exponents_and_trailing_dot() {
        let toks = kinds("let a = 1e-5; let b = 2.5E+3; let c = x.max(0.); a[1..2]");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(nums.contains(&"1e-5"), "{nums:?}");
        assert!(nums.contains(&"2.5E+3"), "{nums:?}");
        assert!(nums.contains(&"0."), "{nums:?}");
        // Range stays two ints + `..`, not a float.
        assert!(nums.contains(&"1") && nums.contains(&"2"), "{nums:?}");
    }

    #[test]
    fn method_call_on_number_is_not_a_fraction() {
        let toks = kinds("0.0f64.max(1.0)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0.0f64", "1.0"], "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn line_numbers_survive_string_continuations_and_multiline_strings() {
        let toks = lex("let a = \"one \\\n two\";\nlet b = \"x\ny\";\nfn f() {}");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3, "{toks:?}");
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 5, "{toks:?}");
    }

    #[test]
    fn compound_operators_fuse() {
        let toks = kinds("a == b != c <= d >= e :: f -> g => h .. i && j || k");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            ops,
            ["==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||"]
        );
    }
}

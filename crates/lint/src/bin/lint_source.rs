//! Workspace source lint driver.
//!
//! ```text
//! lint-source [--root DIR] [--json FILE] [--list] [--plant]
//! ```
//!
//! Scans every `.rs` file under `crates/*/src` and `src/` (plus the
//! README/DESIGN registry tables) with the `pscg-lint` pass catalog and
//! prints findings as `file:line: [pass] message`. Exits **19**
//! (`FindingClass::Lint`) when any finding survives suppression, 0 on a
//! clean tree.
//!
//! `--plant` injects a known-bad virtual source and *requires* every code
//! pass to flag it, exiting 19 when the gate holds and 1 when any planted
//! violation escapes — the engine's non-vacuousness proof, mirroring
//! `repro --chaos-plant`.
//!
//! `--json FILE` additionally writes the findings as a JSON artifact
//! (uploaded by the CI `lint-source` job).

use std::path::PathBuf;
use std::process::exit;

use pscg_lint::passes::all_passes;
use pscg_lint::{engine, plant, Workspace};

/// Default workspace root: two levels above this crate's manifest.
const DEFAULT_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

fn main() {
    let mut root = PathBuf::from(DEFAULT_ROOT);
    let mut json_out: Option<PathBuf> = None;
    let mut do_plant = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(f) => json_out = Some(PathBuf::from(f)),
                None => usage("--json needs a file"),
            },
            "--plant" => do_plant = true,
            "--list" => {
                for p in all_passes() {
                    println!("{:26} {}", p.name(), p.description());
                }
                return;
            }
            "--help" | "-h" => {
                println!("lint-source [--root DIR] [--json FILE] [--list] [--plant]");
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint-source: {e}");
            exit(1);
        }
    };

    if do_plant {
        let (report, escaped) = plant::run_with_plant(ws);
        print!("{}", engine::render_text(&report));
        if let Some(p) = &json_out {
            write_json(p, &report);
        }
        if escaped.is_empty() {
            println!(
                "lint-source: plant caught by all {} code passes — exiting {} to prove the gate",
                plant::PLANTED_PASSES.len(),
                engine::EXIT_LINT
            );
            exit(engine::EXIT_LINT);
        }
        eprintln!(
            "lint-source: PLANT ESCAPED — passes {escaped:?} did not fire on {}",
            plant::PLANT_PATH
        );
        exit(1);
    }

    let report = engine::run(&ws);
    print!("{}", engine::render_text(&report));
    if let Some(p) = &json_out {
        write_json(p, &report);
    }
    if report.findings.is_empty() {
        exit(0);
    }
    exit(engine::EXIT_LINT);
}

fn write_json(path: &PathBuf, report: &engine::Report) {
    if let Err(e) = std::fs::write(path, engine::render_json(report)) {
        eprintln!("lint-source: cannot write {}: {e}", path.display());
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("lint-source: {msg}");
    exit(2);
}

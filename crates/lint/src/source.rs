//! The per-file source model the passes run against: lexed tokens with a
//! comment-free "code view", `#[cfg(test)]` / `#[test]` region detection,
//! function spans, and parsed `pscg-lint: allow(…)` directives.

use crate::lex::{lex, TokKind, Token};

/// An inline suppression directive:
/// `// pscg-lint: allow(<pass>, <reason>)`.
///
/// A directive covers findings on its own line and on the next line that
/// carries code (so it can sit on the line above a long expression or
/// trail the offending line). The reason is mandatory — an allow without
/// one is itself a finding of the `allow-syntax` pass.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Pass name the directive suppresses.
    pub pass: String,
    /// Human reason; must be non-empty.
    pub reason: String,
    /// Line of the directive comment.
    pub line: u32,
    /// Lines the directive covers (its own plus the next code line).
    pub covers: Vec<u32>,
}

/// A malformed suppression directive, reported by the `allow-syntax`
/// pass.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Line of the directive comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// A `fn` item's extent, used for in-function analyses and blessed-helper
/// exemptions.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Code-token index of the `fn` keyword.
    pub start: usize,
    /// Code-token index of the body's opening `{`.
    pub body_start: usize,
    /// Code-token index of the closing `}` (inclusive).
    pub end: usize,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (virtual paths are allowed for
    /// planted sources).
    pub rel_path: String,
    /// Raw text.
    pub text: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens — the "code view" the
    /// pattern passes scan.
    pub code: Vec<usize>,
    /// Code-view index ranges `[start, end]` (inclusive) lying inside
    /// `#[cfg(test)]` modules or `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    /// Function spans, in source order (outer functions precede the
    /// nested ones they contain).
    pub fns: Vec<FnSpan>,
    /// Parsed suppression directives.
    pub allows: Vec<Allow>,
    /// Malformed suppression directives.
    pub bad_allows: Vec<BadAllow>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(rel_path: &str, text: &str, known_passes: &[&str]) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let mut f = SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
            tokens,
            code,
            test_regions: Vec::new(),
            fns: Vec::new(),
            allows: Vec::new(),
            bad_allows: Vec::new(),
        };
        f.find_test_regions();
        f.find_fns();
        f.find_allows(known_passes);
        f
    }

    /// The code-view token at position `i`, or a static empty token text
    /// past the end (simplifies lookahead in the passes).
    pub fn ct(&self, i: usize) -> &str {
        self.code
            .get(i)
            .map(|&t| self.tokens[t].text.as_str())
            .unwrap_or("")
    }

    /// Kind of the code-view token at `i` (`Punct` past the end).
    pub fn ck(&self, i: usize) -> TokKind {
        self.code
            .get(i)
            .map(|&t| self.tokens[t].kind)
            .unwrap_or(TokKind::Punct)
    }

    /// Line of the code-view token at `i`.
    pub fn cline(&self, i: usize) -> u32 {
        self.code.get(i).map(|&t| self.tokens[t].line).unwrap_or(0)
    }

    /// Number of code-view tokens.
    pub fn clen(&self) -> usize {
        self.code.len()
    }

    /// True when the code-view position lies in a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost function span containing code-view position `i`.
    pub fn fn_containing(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| i >= f.start && i <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// Finds the code-view index of the delimiter matching the opener at
    /// `open` (one of `(`/`[`/`{`). Returns `None` on imbalance.
    pub fn match_delim(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.ct(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut depth = 0usize;
        for i in open..self.clen() {
            let t = self.ct(i);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Marks `#[cfg(test)] mod …` bodies and `#[test] fn …` bodies.
    fn find_test_regions(&mut self) {
        let mut i = 0usize;
        while i + 1 < self.clen() {
            if self.ct(i) == "#" && self.ct(i + 1) == "[" {
                let Some(close) = self.match_delim(i + 1) else {
                    break;
                };
                let is_test_attr = (i + 2..close).any(|j| self.ct(j) == "test");
                if is_test_attr {
                    // Skip any further attributes between this one and the
                    // item, then find the item's body braces.
                    let mut j = close + 1;
                    while self.ct(j) == "#" && self.ct(j + 1) == "[" {
                        match self.match_delim(j + 1) {
                            Some(c) => j = c + 1,
                            None => break,
                        }
                    }
                    let mut k = j;
                    while k < self.clen() && self.ct(k) != "{" && self.ct(k) != ";" {
                        k += 1;
                    }
                    if self.ct(k) == "{" {
                        if let Some(end) = self.match_delim(k) {
                            self.test_regions.push((i, end));
                            i = end + 1;
                            continue;
                        }
                    }
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }

    /// Records every `fn` item with a body.
    fn find_fns(&mut self) {
        let mut i = 0usize;
        while i < self.clen() {
            if self.ct(i) == "fn" && self.ck(i + 1) == TokKind::Ident {
                let name = self.ct(i + 1).to_string();
                // Find the body `{`, stopping at `;` (trait method
                // declarations have no body).
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut body = None;
                while j < self.clen() {
                    match self.ct(j) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        // The lexer fuses shift operators; in a signature
                        // they can only be nested-generic closers.
                        ">>" => angle -= 2,
                        "<<" => angle += 2,
                        "->" => {}
                        ";" if angle <= 0 => break,
                        "{" if angle <= 0 => {
                            body = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(b) = body {
                    if let Some(end) = self.match_delim(b) {
                        self.fns.push(FnSpan {
                            name,
                            start: i,
                            body_start: b,
                            end,
                        });
                    }
                }
            }
            i += 1;
        }
    }

    /// Parses `pscg-lint:` directives out of line comments.
    fn find_allows(&mut self, known_passes: &[&str]) {
        // Lines that carry at least one code token, for directive targeting.
        let code_lines: Vec<u32> = {
            let mut v: Vec<u32> = self.code.iter().map(|&t| self.tokens[t].line).collect();
            v.dedup();
            v
        };
        for tok in &self.tokens {
            if tok.kind != TokKind::LineComment {
                continue;
            }
            // Directives live in plain `//` comments only; `///`/`//!`
            // docs may *talk about* the syntax without enacting it.
            if tok.text.starts_with("///") || tok.text.starts_with("//!") {
                continue;
            }
            let Some(at) = tok.text.find("pscg-lint:") else {
                continue;
            };
            let rest = tok.text[at + "pscg-lint:".len()..].trim();
            let line = tok.line;
            let Some(inner) = rest
                .strip_prefix("allow(")
                .and_then(|r| r.rfind(')').map(|e| &r[..e]))
            else {
                self.bad_allows.push(BadAllow {
                    line,
                    problem: format!(
                        "malformed directive {rest:?}: expected allow(<pass>, <reason>)"
                    ),
                });
                continue;
            };
            let Some((pass, reason)) = inner.split_once(',') else {
                self.bad_allows.push(BadAllow {
                    line,
                    problem: format!("allow({inner}) has no reason: every allow must say why"),
                });
                continue;
            };
            let (pass, reason) = (pass.trim().to_string(), reason.trim().to_string());
            if reason.is_empty() {
                self.bad_allows.push(BadAllow {
                    line,
                    problem: format!("allow({pass}, …) has an empty reason"),
                });
                continue;
            }
            if !known_passes.contains(&pass.as_str()) {
                self.bad_allows.push(BadAllow {
                    line,
                    problem: format!("allow names unknown pass {pass:?}"),
                });
                continue;
            }
            // A trailing directive (code on its own line) covers exactly
            // that line; a directive on a comment-only line covers the
            // next line that carries code.
            let mut covers = vec![line];
            if !code_lines.contains(&line) {
                if let Some(&next) = code_lines.iter().find(|&&l| l > line) {
                    covers.push(next);
                }
            }
            self.allows.push(Allow {
                pass,
                reason,
                line,
                covers,
            });
        }
    }

    /// True when a finding of `pass` at `line` is suppressed by an allow.
    pub fn allowed(&self, pass: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.pass == pass && a.covers.contains(&line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PASSES: &[&str] = &["nan-clamp", "float-eq"];

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = "\
fn hot() { let x = 1; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let y = 2; }
}
";
        let f = SourceFile::parse("a.rs", src, PASSES);
        let hot = f
            .code
            .iter()
            .position(|&t| f.tokens[t].text == "x")
            .unwrap();
        let y = f
            .code
            .iter()
            .position(|&t| f.tokens[t].text == "y")
            .unwrap();
        assert!(!f.in_test(hot));
        assert!(f.in_test(y));
    }

    #[test]
    fn standalone_test_fn_is_a_test_region() {
        let src = "#[test]\nfn t() { let y = 2; }\nfn hot() { let x = 1; }\n";
        let f = SourceFile::parse("a.rs", src, PASSES);
        let y = f
            .code
            .iter()
            .position(|&t| f.tokens[t].text == "y")
            .unwrap();
        let x = f
            .code
            .iter()
            .position(|&t| f.tokens[t].text == "x")
            .unwrap();
        assert!(f.in_test(y));
        assert!(!f.in_test(x));
    }

    #[test]
    fn fn_spans_nest_and_resolve_innermost() {
        let src = "fn outer() { fn inner() { let z = 3; } }";
        let f = SourceFile::parse("a.rs", src, PASSES);
        assert_eq!(f.fns.len(), 2);
        let z = f
            .code
            .iter()
            .position(|&t| f.tokens[t].text == "z")
            .unwrap();
        assert_eq!(f.fn_containing(z).unwrap().name, "inner");
    }

    #[test]
    fn generic_return_type_does_not_end_fn_search() {
        let src = "fn f() -> Result<(), Vec<u8>> { let w = 4; }";
        let f = SourceFile::parse("a.rs", src, PASSES);
        assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
    }

    #[test]
    fn allow_directive_covers_next_code_line_and_requires_reason() {
        let src = "\
// pscg-lint: allow(nan-clamp, model time clamp on finite operands)
let a = x.max(0.0);
let b = y.max(0.0); // pscg-lint: allow(nan-clamp, trailing form)
// pscg-lint: allow(float-eq)
let c = 1;
// pscg-lint: allow(no-such-pass, reason)
let d = 2;
";
        let f = SourceFile::parse("a.rs", src, PASSES);
        assert!(f.allowed("nan-clamp", 2));
        assert!(f.allowed("nan-clamp", 3));
        assert!(!f.allowed("nan-clamp", 5));
        assert_eq!(f.bad_allows.len(), 2, "{:?}", f.bad_allows);
        assert!(f.bad_allows[0].problem.contains("no reason"));
        assert!(f.bad_allows[1].problem.contains("unknown pass"));
    }
}

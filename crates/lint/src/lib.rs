//! `pscg-lint` — a source-level numeric-safety and invariant lint engine
//! for the pscg workspace.
//!
//! PR 9's chaos campaign *dynamically* discovered a silent-wrong class:
//! `.max(0.0).sqrt()` clamping a NaN-poisoned reduction into fake
//! zero-residual convergence. The fix was protected only by hand-written
//! comments; this crate is the missing *static* layer. A lightweight
//! in-tree Rust lexer ([`lex`]) feeds a token-level source model
//! ([`source`]: test regions, function spans, suppression directives)
//! that a catalog of passes ([`passes`]) scans:
//!
//! | pass | catches |
//! |---|---|
//! | `nan-clamp` | clamp idioms that map NaN into fake in-range values |
//! | `unguarded-convergence` | convergence tests with no preceding trust check |
//! | `panic-in-hot-path` | unwrap/expect/panic!/indexing asserts in solver code |
//! | `unsafe-without-safety` | `unsafe` without an adjacent `SAFETY:` argument |
//! | `float-eq` | exact `==`/`!=` on float expressions outside tests |
//! | `nondet-iteration` | HashMap/HashSet iteration under determinism contracts |
//! | `registry-exit-codes` | exit-code doc tables vs. `FindingClass` |
//! | `registry-recovery-codes` | recovery-code doc tables vs. `resilience::code` |
//! | `registry-span-kinds` | span-kind doc table vs. `SpanKind` |
//! | `allow-syntax` | malformed/reasonless/unknown-pass allow directives |
//!
//! Suppression is inline and reasoned:
//! `// pscg-lint: allow(<pass>, <reason>)` covers its own line and the
//! next code line; an empty reason is itself a finding. The `lint-source`
//! binary (and `repro --lint-source`) scans the workspace and exits
//! **19** (`FindingClass::Lint`) on findings; `--plant` injects a
//! known-bad virtual file that every code pass must flag — the same
//! prove-it-non-vacuous pattern as `broken-variants`/`broken-ir`/
//! `broken-par`/`--chaos-plant`.

#![warn(missing_docs)]

pub mod engine;
pub mod lex;
pub mod passes;
pub mod plant;
pub mod source;

pub use engine::{
    render_json, render_text, run, scan_workspace, Finding, Report, Workspace, EXIT_LINT,
};

// allow-syntax fixture: malformed, reasonless and unknown-pass
// directives are themselves findings and cannot be suppressed.
fn fixture_bad_allows(x: f64) -> f64 {
    let a = x; // pscg-lint: allow(float-eq) lint-hit
    let b = x; // pscg-lint: allow(no-such-pass, some reason) lint-hit
    let c = x; // pscg-lint: allowing things lint-hit
    let d = x; // pscg-lint: allow(float-eq, ) lint-hit
    a + b + c + d
}

// unsafe-without-safety fixture: a bare unsafe must be flagged; one
// carrying an adjacent invariant comment or an allow must not. (This
// header deliberately avoids the justification marker words.)
fn fixture_unsafe(p: *const f64) -> f64 {
    unsafe { *p } // lint-hit
}

fn allowed(p: *const f64) -> f64 {
    unsafe { *p } // pscg-lint: allow(unsafe-without-safety, fixture: documents the suppressed shape)
}

fn justified(p: *const f64) -> f64 {
    // SAFETY: the fixture pointer is valid by construction.
    unsafe { *p }
}

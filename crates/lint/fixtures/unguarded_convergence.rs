// unguarded-convergence fixture: a relres/threshold comparison with no
// preceding trust check must be flagged; a guarded or allowed one must
// not.
fn fixture_solver(relres: f64, threshold: f64) -> bool {
    relres < threshold // lint-hit
}

fn allowed_solver(relres: f64, threshold: f64) -> bool {
    relres < threshold // pscg-lint: allow(unguarded-convergence, fixture: documents the suppressed shape)
}

fn guarded_solver(relres: f64, threshold: f64) -> bool {
    if !relres.is_finite() {
        return false;
    }
    relres < threshold
}

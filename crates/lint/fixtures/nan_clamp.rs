// nan-clamp fixture: clamp idioms that map a poisoned NaN into a fake
// in-range value. Marked lines must be flagged; the allow must
// suppress its site.
fn fixture_norm(norm_sq: f64, bnorm: f64) -> f64 {
    let bad = norm_sq.max(0.0).sqrt() / bnorm; // lint-hit
    let also_bad = norm_sq.max(0.0); // lint-hit
    let clamped_cmp = norm_sq.clamp(0.0, 1.0).sqrt(); // lint-hit
    let ok = norm_sq.max(0.0).sqrt(); // pscg-lint: allow(nan-clamp, fixture: documents the suppressed shape)
    bad + also_bad + clamped_cmp + ok
}

// nondet-iteration fixture: iterating a hash container in
// determinism-contract code must be flagged; an order-insensitive use
// justified by an allow must not, and BTreeMap iteration is always fine.
use std::collections::BTreeMap;
use std::collections::HashMap;

fn fixture_iter(slots: HashMap<u64, f64>, tree: BTreeMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in slots.iter() { // lint-hit
        acc += *v;
    }
    for v in slots.values() { // pscg-lint: allow(nondet-iteration, fixture: order-insensitive sum)
        acc += *v;
    }
    for (_k, v) in tree.iter() {
        acc += *v;
    }
    acc
}

// panic-in-hot-path fixture: unwrap/expect/panic!/indexing asserts in
// non-test solver-crate code must be flagged; lock()/wait() poison
// propagation and allowed sites must not.
fn fixture_aborts(vals: &[f64]) -> f64 {
    let first = *vals.first().unwrap(); // lint-hit
    let second = *vals.get(1).expect("fixture"); // lint-hit
    if vals.is_empty() {
        panic!("fixture"); // lint-hit
    }
    assert!(vals[0].is_finite()); // lint-hit
    let ok = *vals.last().unwrap(); // pscg-lint: allow(panic-in-hot-path, fixture: documents the suppressed shape)
    first + second + ok
}

fn poison_propagation(m: &std::sync::Mutex<f64>) -> f64 {
    *m.lock().unwrap()
}

fn shape_assert(vals: &[f64], n: usize) {
    assert_eq!(vals.len(), n, "shape contract at the API boundary");
    debug_assert!(vals[0].is_finite());
}

// float-eq fixture: exact ==/!= against float literals or f32/f64
// constants must be flagged outside tests; the allow must suppress.
fn fixture_eq(x: f64) -> bool {
    let a = x == 0.0; // lint-hit
    let b = x != 1.0; // lint-hit
    let c = x == f64::INFINITY; // lint-hit
    let ok = x == 2.0; // pscg-lint: allow(float-eq, fixture: documents the suppressed shape)
    a || b || c || ok
}

fn integer_eq_is_fine(n: usize) -> bool {
    n == 0
}
